//! Workload profiles: compact statistical fingerprints of a program
//! corpus, and a seeded generator that manufactures arbitrarily many
//! functions matching a fingerprint.
//!
//! A [`WorkloadProfile`] captures the distributions that drive register
//! allocator behavior — instruction mix, register-pressure histogram,
//! loop-depth distribution, CFG shape, call density — without keeping the
//! programs themselves. [`extract_profile`] measures any corpus;
//! [`generate_from_profile`] inverts the measurement: it maps the profile
//! back onto the shape knobs of the [`crate::mibench`] generator and
//! emits parse-valid, validator-clean programs whose re-extracted profile
//! lands near the source (the fidelity tolerance is pinned by tests).
//!
//! Generation is *order-independent*: program `i` of a corpus is derived
//! from `(seed, i)` alone via a SplitMix64 stream split, so corpora are
//! byte-identical no matter how many threads compile them or in which
//! order programs are produced.

use crate::mibench::{gen_program, FuncShape};
use dra_ir::{BinOp, Inst, Program};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Schema tag for the on-disk JSON form (written by `drac profile`).
pub const PROFILE_SCHEMA: &str = "dra-profile-v1";

/// Number of register-pressure buckets ([0-3], [4-7], … [20+]).
pub const PRESSURE_BUCKETS: usize = 6;
/// Width of each pressure bucket in registers.
pub const PRESSURE_BUCKET_WIDTH: usize = 4;
/// Number of loop-depth buckets (depth 0, 1, 2, 3+).
pub const DEPTH_BUCKETS: usize = 4;

/// Fractions of the instruction stream by category. The six fields sum
/// to ~1 for an extracted profile (Nop/SetLastReg pseudo-ops are not
/// counted).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InstMix {
    /// Add/sub/logic/shift ALU operations (including immediate forms).
    pub alu: f64,
    /// Multiply, divide, and remainder.
    pub muldiv: f64,
    /// Loads and stores (including spill traffic, if present).
    pub mem: f64,
    /// Register and immediate moves, and parameter materialization.
    pub mov: f64,
    /// Direct calls.
    pub call: f64,
    /// Branches and returns.
    pub branch: f64,
}

/// Control-flow shape summary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CfgShape {
    /// Mean basic blocks per function.
    pub avg_blocks: f64,
    /// Mean instructions per block.
    pub avg_block_len: f64,
    /// Fraction of blocks ending in a conditional branch.
    pub branch_density: f64,
    /// Mean functions per program.
    pub avg_funcs: f64,
}

/// A statistical fingerprint of a workload, sufficient to drive the
/// corpus generator. See the module docs for the extraction/generation
/// round trip.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadProfile {
    /// Profile name (also the default corpus name prefix).
    pub name: String,
    /// Instruction-category mix.
    pub inst_mix: InstMix,
    /// Fraction of functions whose MAXLIVE falls in each bucket
    /// (`[4b, 4b+3]`, last bucket open-ended).
    pub pressure_hist: [f64; PRESSURE_BUCKETS],
    /// Fraction of instructions at loop-nesting depth 0, 1, 2, 3+.
    pub loop_depth_hist: [f64; DEPTH_BUCKETS],
    /// CFG shape summary.
    pub cfg_shape: CfgShape,
    /// Calls per instruction (redundant with `inst_mix.call` for
    /// extracted profiles; kept separate so hand-written profiles can
    /// dial call pressure without rebalancing the whole mix).
    pub call_density: f64,
}

/// Pressure bucket index for a MAXLIVE value.
pub fn pressure_bucket(p: usize) -> usize {
    (p / PRESSURE_BUCKET_WIDTH).min(PRESSURE_BUCKETS - 1)
}

/// Measure a corpus into a profile.
pub fn extract_profile(name: &str, programs: &[Program]) -> WorkloadProfile {
    let mut mix = [0usize; 6]; // alu, muldiv, mem, mov, call, branch
    let mut pressure_hist = [0usize; PRESSURE_BUCKETS];
    let mut depth_hist = [0usize; DEPTH_BUCKETS];
    let mut blocks = 0usize;
    let mut insts = 0usize;
    let mut cond_blocks = 0usize;
    let mut funcs = 0usize;
    for p in programs {
        for f in &p.funcs {
            funcs += 1;
            pressure_hist[pressure_bucket(dra_ir::liveness::max_pressure_of(f))] += 1;
            let depths = dra_ir::loops::loop_depths(f);
            for (b, blk) in f.iter_blocks() {
                blocks += 1;
                let db = (depths[b.index()] as usize).min(DEPTH_BUCKETS - 1);
                for i in &blk.insts {
                    let cat = match i {
                        Inst::Bin { op, .. } | Inst::BinImm { op, .. } => {
                            if matches!(op, BinOp::Mul | BinOp::Div | BinOp::Rem) {
                                1
                            } else {
                                0
                            }
                        }
                        Inst::Load { .. }
                        | Inst::Store { .. }
                        | Inst::SpillLoad { .. }
                        | Inst::SpillStore { .. } => 2,
                        Inst::Mov { .. } | Inst::MovImm { .. } | Inst::GetParam { .. } => 3,
                        Inst::Call { .. } => 4,
                        Inst::Br { .. } | Inst::CondBr { .. } | Inst::Ret { .. } => 5,
                        Inst::SetLastReg { .. } | Inst::Nop => continue,
                    };
                    mix[cat] += 1;
                    insts += 1;
                    depth_hist[db] += 1;
                }
                if matches!(blk.insts.last(), Some(Inst::CondBr { .. })) {
                    cond_blocks += 1;
                }
            }
        }
    }
    let norm = |n: usize, d: usize| if d == 0 { 0.0 } else { n as f64 / d as f64 };
    WorkloadProfile {
        name: name.to_string(),
        inst_mix: InstMix {
            alu: norm(mix[0], insts),
            muldiv: norm(mix[1], insts),
            mem: norm(mix[2], insts),
            mov: norm(mix[3], insts),
            call: norm(mix[4], insts),
            branch: norm(mix[5], insts),
        },
        pressure_hist: pressure_hist.map(|n| norm(n, funcs)),
        loop_depth_hist: depth_hist.map(|n| norm(n, insts)),
        cfg_shape: CfgShape {
            avg_blocks: norm(blocks, funcs),
            avg_block_len: norm(insts, blocks),
            branch_density: norm(cond_blocks, blocks),
            avg_funcs: norm(funcs, programs.len()),
        },
        call_density: norm(mix[4], insts),
    }
}

/// Structural sanity gate for a profile, applied before generation and
/// when loading from JSON. Rejects non-finite, negative, or vacuous
/// distributions rather than silently generating garbage.
///
/// # Errors
///
/// A human-readable description of the first violated constraint.
pub fn validate_profile(p: &WorkloadProfile) -> Result<(), String> {
    if p.name.is_empty() {
        return Err("profile name is empty".into());
    }
    let mix = [
        ("alu", p.inst_mix.alu),
        ("muldiv", p.inst_mix.muldiv),
        ("mem", p.inst_mix.mem),
        ("mov", p.inst_mix.mov),
        ("call", p.inst_mix.call),
        ("branch", p.inst_mix.branch),
    ];
    let mut mix_sum = 0.0;
    for (name, v) in mix {
        if !v.is_finite() || v < 0.0 {
            return Err(format!("inst_mix.{name} = {v} (must be finite and >= 0)"));
        }
        mix_sum += v;
    }
    if mix_sum <= 0.0 {
        return Err("inst_mix sums to zero".into());
    }
    if mix_sum > 1.0 + 1e-6 {
        return Err(format!("inst_mix sums to {mix_sum} (> 1)"));
    }
    for (label, hist) in [
        ("pressure_hist", &p.pressure_hist[..]),
        ("loop_depth_hist", &p.loop_depth_hist[..]),
    ] {
        let mut sum = 0.0;
        for (i, &v) in hist.iter().enumerate() {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{label}[{i}] = {v} (must be finite and >= 0)"));
            }
            sum += v;
        }
        if sum <= 0.0 {
            return Err(format!("{label} sums to zero"));
        }
        if sum > 1.0 + 1e-6 {
            return Err(format!("{label} sums to {sum} (> 1)"));
        }
    }
    let cfg = &p.cfg_shape;
    if !cfg.avg_blocks.is_finite() || cfg.avg_blocks < 1.0 {
        return Err(format!("cfg_shape.avg_blocks = {} (must be >= 1)", cfg.avg_blocks));
    }
    if !cfg.avg_block_len.is_finite() || cfg.avg_block_len < 1.0 {
        return Err(format!(
            "cfg_shape.avg_block_len = {} (must be >= 1)",
            cfg.avg_block_len
        ));
    }
    if !cfg.branch_density.is_finite() || !(0.0..=1.0).contains(&cfg.branch_density) {
        return Err(format!(
            "cfg_shape.branch_density = {} (must be in [0,1])",
            cfg.branch_density
        ));
    }
    if !cfg.avg_funcs.is_finite() || cfg.avg_funcs < 1.0 {
        return Err(format!("cfg_shape.avg_funcs = {} (must be >= 1)", cfg.avg_funcs));
    }
    if !p.call_density.is_finite() || !(0.0..=1.0).contains(&p.call_density) {
        return Err(format!("call_density = {} (must be in [0,1])", p.call_density));
    }
    Ok(())
}

/// SplitMix64 step — the per-program stream split. Program `i` of a
/// corpus draws from `SmallRng::seed_from_u64(splitmix64(seed, i))`, so
/// generation order (and compile-thread count) cannot affect content.
fn splitmix64(seed: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Sample a bucket index from non-negative weights (need not sum to 1).
fn sample_bucket(rng: &mut SmallRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return 0;
    }
    let mut roll = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if roll < w {
            return i;
        }
        roll -= w;
    }
    weights.len() - 1
}

/// Map a profile onto one function's generator shape.
fn shape_from_profile(p: &WorkloadProfile, rng: &mut SmallRng) -> FuncShape {
    // Step ratios: the generator emits mem/call/expression *steps*; movs
    // and branches arise structurally. Normalize the mix over the four
    // step-driven categories so their relative frequencies survive. The
    // boost factors compensate for structural ALU dilution (loop
    // increments, working-set folds) measured on re-extracted corpora.
    let m = &p.inst_mix;
    let step_mass = (m.alu + m.muldiv + m.mem + m.call).max(1e-9);
    let mem_ratio = (1.35 * m.mem / step_mass).clamp(0.0, 0.8);
    let call_ratio = (2.2 * p.call_density.max(m.call) / step_mass).clamp(0.0, 0.6);
    let muldiv_ratio = (1.4 * m.muldiv / (m.alu + m.muldiv).max(1e-9)).clamp(0.0, 0.9);

    // Loop structure from the depth histogram: the in-loop instruction
    // mass sets how many loop regions to emit; the deepest populated
    // bucket sets the nesting allowance.
    let in_loop: f64 = p.loop_depth_hist[1..].iter().sum();
    let loops_per_func = if in_loop < 0.05 {
        0
    } else {
        ((in_loop * 4.0).round() as usize).clamp(1, 3)
    };
    let max_depth = (1..DEPTH_BUCKETS)
        .rev()
        .find(|&d| p.loop_depth_hist[d] > 0.02)
        .unwrap_or(1) as u32;

    let block_len = (p.cfg_shape.avg_block_len.round() as usize).clamp(3, 24);
    let branch_ratio = (p.cfg_shape.branch_density * 1.4).clamp(0.05, 0.9);

    // Pressure: sample the bucket, then a value inside it. The generator's
    // MAXLIVE overshoots its working-set knob — the data base, the fold
    // accumulator, and one `(i, n)` counter pair per live loop level ride
    // on top — so subtract a structural overhead that grows with the loop
    // shape (calibrated against re-extraction of generated corpora).
    let bucket = sample_bucket(rng, &p.pressure_hist);
    let lo = bucket * PRESSURE_BUCKET_WIDTH;
    let target = lo + rng.gen_range(0..PRESSURE_BUCKET_WIDTH);
    let overhead = 2 + loops_per_func + max_depth as usize;
    let pressure = target.saturating_sub(overhead).clamp(2, 24);

    FuncShape {
        pressure,
        hot_entry: false,
        block_len,
        loops_per_func,
        max_depth,
        mem_ratio,
        call_ratio,
        branch_ratio,
        trip_range: (6, 24),
        muldiv_ratio,
    }
}

/// Generate `count` functions matching `profile`, packed into programs of
/// roughly `cfg_shape.avg_funcs` functions each. Every program is
/// validator-clean ([`dra_ir::validate::validate_program`] runs inside
/// the generator) and survives the text round trip.
///
/// # Errors
///
/// Returns the [`validate_profile`] failure for a malformed profile.
pub fn generate_from_profile(
    profile: &WorkloadProfile,
    seed: u64,
    count: usize,
) -> Result<Vec<Program>, String> {
    validate_profile(profile)?;
    let name: String = profile
        .name
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    let mut programs = Vec::new();
    let mut emitted = 0usize;
    let mut pi = 0u64;
    while emitted < count {
        let sub = splitmix64(seed, pi);
        let mut rng = SmallRng::seed_from_u64(sub);
        let base = profile.cfg_shape.avg_funcs.floor() as usize;
        let frac = profile.cfg_shape.avg_funcs - base as f64;
        let mut k = (base + usize::from(rng.gen_bool(frac.clamp(0.0, 1.0)))).clamp(1, 6);
        k = k.min(count - emitted);
        let shapes: Vec<FuncShape> =
            (0..k).map(|_| shape_from_profile(profile, &mut rng)).collect();
        programs.push(gen_program(&format!("{name}_{pi}"), &shapes, sub));
        emitted += k;
        pi += 1;
    }
    Ok(programs)
}

/// The four checked-in reference profiles. Each is a hand-tuned
/// fingerprint of a workload family the register-allocation literature
/// leans on; `profiles/*.json` in the repo root are their serialized
/// forms (regenerated by `drac profile --builtin`).
pub fn builtin_profiles() -> Vec<WorkloadProfile> {
    vec![
        // Dense arithmetic kernels: multiply-accumulate heavy, high
        // register pressure, tight doubly-nested loops, almost no calls.
        WorkloadProfile {
            name: "embedded-dsp".into(),
            inst_mix: InstMix {
                alu: 0.42,
                muldiv: 0.14,
                mem: 0.12,
                mov: 0.18,
                call: 0.01,
                branch: 0.13,
            },
            pressure_hist: [0.0, 0.05, 0.30, 0.45, 0.20, 0.0],
            loop_depth_hist: [0.25, 0.45, 0.30, 0.0],
            cfg_shape: CfgShape {
                avg_blocks: 12.0,
                avg_block_len: 9.0,
                branch_density: 0.25,
                avg_funcs: 2.0,
            },
            call_density: 0.01,
        },
        // Linked-structure traversal: load/store dominated, small live
        // sets, shallow loops with data-dependent branching.
        WorkloadProfile {
            name: "pointer-chasing".into(),
            inst_mix: InstMix {
                alu: 0.28,
                muldiv: 0.01,
                mem: 0.32,
                mov: 0.18,
                call: 0.03,
                branch: 0.18,
            },
            pressure_hist: [0.10, 0.60, 0.30, 0.0, 0.0, 0.0],
            loop_depth_hist: [0.35, 0.55, 0.10, 0.0],
            cfg_shape: CfgShape {
                avg_blocks: 14.0,
                avg_block_len: 5.0,
                branch_density: 0.35,
                avg_funcs: 2.0,
            },
            call_density: 0.03,
        },
        // Branch mazes: state machines and parsers — many small blocks,
        // deep nesting, moderate pressure.
        WorkloadProfile {
            name: "deep-cfg".into(),
            inst_mix: InstMix {
                alu: 0.34,
                muldiv: 0.03,
                mem: 0.12,
                mov: 0.20,
                call: 0.02,
                branch: 0.29,
            },
            pressure_hist: [0.05, 0.45, 0.40, 0.10, 0.0, 0.0],
            loop_depth_hist: [0.20, 0.30, 0.30, 0.20],
            cfg_shape: CfgShape {
                avg_blocks: 28.0,
                avg_block_len: 4.0,
                branch_density: 0.45,
                avg_funcs: 2.0,
            },
            call_density: 0.02,
        },
        // Call-graph heavy: many small functions, frequent calls, light
        // loops — the clobber-pressure stress case.
        WorkloadProfile {
            name: "call-heavy".into(),
            inst_mix: InstMix {
                alu: 0.32,
                muldiv: 0.04,
                mem: 0.14,
                mov: 0.22,
                call: 0.10,
                branch: 0.18,
            },
            pressure_hist: [0.15, 0.50, 0.35, 0.0, 0.0, 0.0],
            loop_depth_hist: [0.45, 0.45, 0.10, 0.0],
            cfg_shape: CfgShape {
                avg_blocks: 10.0,
                avg_block_len: 5.0,
                branch_density: 0.30,
                avg_funcs: 4.0,
            },
            call_density: 0.10,
        },
    ]
}

/// Look up a builtin profile by name.
pub fn builtin_profile(name: &str) -> Option<WorkloadProfile> {
    builtin_profiles().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_profiles_validate() {
        let all = builtin_profiles();
        assert_eq!(all.len(), 4);
        for p in &all {
            validate_profile(p).unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn invalid_profiles_are_rejected() {
        let mut p = builtin_profile("call-heavy").unwrap();
        p.pressure_hist = [0.0; PRESSURE_BUCKETS];
        assert!(validate_profile(&p).unwrap_err().contains("pressure_hist"));
        let mut p = builtin_profile("call-heavy").unwrap();
        p.inst_mix.alu = f64::NAN;
        assert!(validate_profile(&p).is_err());
        let mut p = builtin_profile("call-heavy").unwrap();
        p.cfg_shape.avg_funcs = 0.0;
        assert!(validate_profile(&p).is_err());
        assert!(generate_from_profile(&p, 1, 1).is_err());
    }

    #[test]
    fn generation_hits_exact_function_count() {
        let p = builtin_profile("call-heavy").unwrap();
        for count in [1, 7, 40] {
            let corpus = generate_from_profile(&p, 42, count).unwrap();
            let total: usize = corpus.iter().map(|p| p.funcs.len()).sum();
            assert_eq!(total, count);
        }
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let p = builtin_profile("embedded-dsp").unwrap();
        let a = generate_from_profile(&p, 7, 12).unwrap();
        let b = generate_from_profile(&p, 7, 12).unwrap();
        assert_eq!(a, b);
        let c = generate_from_profile(&p, 8, 12).unwrap();
        assert_ne!(a, c);
    }

    /// The fidelity contract: re-extracting a profile from a generated
    /// corpus must land near the profile that generated it. Tolerances
    /// are deliberately loose — the generator is calibrated, not exact —
    /// but tight enough to catch a broken mapping (a category collapsing
    /// to zero, pressure off by a bucket regime, loops disappearing).
    #[test]
    fn generated_corpus_matches_its_profile() {
        for src in builtin_profiles() {
            let corpus = generate_from_profile(&src, 1234, 200).unwrap();
            let got = extract_profile(&src.name, &corpus);
            validate_profile(&got).unwrap_or_else(|e| panic!("{}: {e}", src.name));
            for (label, want, have) in [
                ("alu", src.inst_mix.alu, got.inst_mix.alu),
                ("muldiv", src.inst_mix.muldiv, got.inst_mix.muldiv),
                ("mem", src.inst_mix.mem, got.inst_mix.mem),
                ("mov", src.inst_mix.mov, got.inst_mix.mov),
                ("call", src.inst_mix.call, got.inst_mix.call),
                ("branch", src.inst_mix.branch, got.inst_mix.branch),
            ] {
                assert!(
                    (want - have).abs() <= 0.15,
                    "{}: {label} mix {want:.3} regenerated as {have:.3}",
                    src.name
                );
            }
            let mean_pressure = |h: &[f64]| {
                h.iter()
                    .enumerate()
                    .map(|(i, w)| {
                        w * (i * PRESSURE_BUCKET_WIDTH + PRESSURE_BUCKET_WIDTH / 2) as f64
                    })
                    .sum::<f64>()
            };
            let want = mean_pressure(&src.pressure_hist);
            let have = mean_pressure(&got.pressure_hist);
            assert!(
                (want - have).abs() <= 0.25 * want.max(1.0),
                "{}: mean pressure {want:.2} regenerated as {have:.2}",
                src.name
            );
            let depth_l1: f64 = src
                .loop_depth_hist
                .iter()
                .zip(&got.loop_depth_hist)
                .map(|(a, b)| (a - b).abs())
                .sum();
            assert!(
                depth_l1 <= 0.6,
                "{}: depth hist {:?} regenerated as {:?} (L1 {depth_l1:.3})",
                src.name,
                src.loop_depth_hist,
                got.loop_depth_hist
            );
            assert!(
                (src.call_density - got.call_density).abs() <= 0.1,
                "{}: call density {:.3} regenerated as {:.3}",
                src.name,
                src.call_density,
                got.call_density
            );
        }
    }

    #[test]
    fn extraction_of_mibench_is_sane() {
        let programs: Vec<Program> = crate::mibench::benchmark_names()
            .iter()
            .map(|n| crate::mibench::benchmark(n))
            .collect();
        let p = extract_profile("mibench", &programs);
        validate_profile(&p).unwrap();
        let m = &p.inst_mix;
        let sum = m.alu + m.muldiv + m.mem + m.mov + m.call + m.branch;
        assert!((sum - 1.0).abs() < 1e-9, "mix sums to {sum}");
        assert!((p.pressure_hist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((p.loop_depth_hist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Mibench lives in loops; most instruction mass is at depth >= 1.
        assert!(p.loop_depth_hist[0] < 0.5, "depth hist {:?}", p.loop_depth_hist);
    }
}
