//! # dra-workloads — deterministic benchmark synthesis
//!
//! The paper evaluates on ten Mibench programs (low end, Section 10.1) and
//! on 1928 innermost loops from SPEC2000int (high end, Section 10.2).
//! Neither is runnable in this environment — Mibench needs an ARM cross
//! toolchain and libc, the SPEC loops a production compiler — so this crate
//! synthesizes **seeded, executable, terminating** equivalents whose
//! register-pressure distributions match what the experiments depend on
//! (DESIGN.md §4 documents the substitution):
//!
//! * [`mibench`] — ten named programs with per-benchmark structure knobs
//!   (loop nesting, working-set size, memory/call mix), producing IR
//!   [`dra_ir::Program`]s that the allocators and the low-end simulator
//!   consume directly.
//! * [`loops`] — a generator of loop DDGs for the VLIW experiments, with a
//!   long-tailed register-requirement distribution calibrated so that
//!   roughly 11% of loops need more than 32 registers, and those loops are
//!   larger and carry ~30% of loop execution time.
//!
//! ```
//! use dra_workloads::{benchmark, benchmark_names};
//!
//! assert_eq!(benchmark_names().len(), 10);
//! let sha = benchmark("sha");
//! assert!(sha.num_insts() > 100);
//! // Deterministic: the same name always yields the same program.
//! assert_eq!(sha, benchmark("sha"));
//! ```

pub mod loops;
pub mod mibench;
pub mod profile;

pub use loops::{generate_loop_suite, LoopSuiteConfig, SuiteLoop};
pub use mibench::{benchmark, benchmark_names, BenchSpec};
pub use profile::{
    builtin_profile, builtin_profiles, extract_profile, generate_from_profile,
    validate_profile, WorkloadProfile,
};
