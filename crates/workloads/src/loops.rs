//! The SPEC2000-like innermost-loop suite for the high-end evaluation.
//!
//! Section 10.2 studies 1928 innermost loops where: loops are ~80% of
//! total execution time; about 11% of the loops need more than 32
//! registers; those loops are typically big and account for over 30% of
//! loop execution time. This generator reproduces that *distribution* —
//! the quantity Tables 2 and 3 actually depend on — with two loop
//! populations:
//!
//! * **common loops** — narrow dataflow (few parallel chains, modest
//!   latencies), register requirement well under 32;
//! * **hungry loops** (~11%) — wide independent load/compute fans with
//!   late joins, requirement beyond 32, larger bodies and trip counts.

use dra_swp::{LoopDdg, LoopOp};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of the loop-suite generator.
#[derive(Clone, Debug, PartialEq)]
pub struct LoopSuiteConfig {
    /// Number of loops (the paper studies 1928).
    pub n_loops: usize,
    /// Fraction of loops engineered to need more than 32 registers.
    pub hungry_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LoopSuiteConfig {
    fn default() -> Self {
        LoopSuiteConfig {
            n_loops: 1928,
            hungry_fraction: 0.11,
            seed: 0x5bec2000,
        }
    }
}

/// One loop of the suite with its execution metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct SuiteLoop {
    /// The dependence graph.
    pub ddg: LoopDdg,
    /// Whether this loop was drawn from the hungry population.
    pub hungry: bool,
    /// Loop index (stable id).
    pub index: usize,
}

/// Generate the suite.
pub fn generate_loop_suite(cfg: &LoopSuiteConfig) -> Vec<SuiteLoop> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let n_hungry = ((cfg.n_loops as f64) * cfg.hungry_fraction).round() as usize;
    let mut loops = Vec::with_capacity(cfg.n_loops);
    for index in 0..cfg.n_loops {
        let hungry = index < n_hungry;
        let ddg = if hungry {
            gen_hungry(&mut rng)
        } else {
            gen_common(&mut rng)
        };
        loops.push(SuiteLoop { ddg, hungry, index });
    }
    // Interleave so hungry loops are spread through the suite.
    let mut rng2 = SmallRng::seed_from_u64(cfg.seed ^ 0xffff);
    for i in (1..loops.len()).rev() {
        let j = rng2.gen_range(0..=i);
        loops.swap(i, j);
    }
    loops
}

/// A narrow loop: 1–4 chains of 2–6 ops, some loop-carried.
fn gen_common(rng: &mut SmallRng) -> LoopDdg {
    let trip = rng.gen_range(50..2000);
    let mut d = LoopDdg::new(trip);
    let chains = rng.gen_range(1..=4);
    for _ in 0..chains {
        let len = rng.gen_range(2..=6);
        let mut prev: Option<usize> = None;
        for k in 0..len {
            let op = if k == 0 && rng.gen_bool(0.6) {
                d.add_op(LoopOp::load(rng.gen_range(2..=4)))
            } else if rng.gen_bool(0.15) {
                d.add_op(LoopOp::alu_lat(3))
            } else {
                d.add_op(LoopOp::alu())
            };
            if let Some(p) = prev {
                d.add_dep(p, op, 0);
            }
            prev = Some(op);
        }
        // Half the chains close a recurrence (accumulators, induction).
        if let Some(last) = prev {
            if rng.gen_bool(0.5) {
                d.add_dep(last, last, 1);
            } else if rng.gen_bool(0.5) {
                let st = d.add_op(LoopOp::store());
                d.add_dep(last, st, 0);
            }
        }
    }
    d
}

/// A register-hungry loop: a wide fan of long-latency loads and multiplies
/// joined late — many long overlapping lifetimes (the shape aggressive
/// unrolling/inlining produces, per the paper's Section 1).
fn gen_hungry(rng: &mut SmallRng) -> LoopDdg {
    let trip = rng.gen_range(200..4000);
    let mut d = LoopDdg::new(trip);
    let width = rng.gen_range(14..=26);
    let mut heads = Vec::with_capacity(width);
    for _ in 0..width {
        let ld = d.add_op(LoopOp::load(rng.gen_range(8..=14)));
        let op = if rng.gen_bool(0.4) {
            let m = d.add_op(LoopOp::alu_lat(rng.gen_range(3..=5)));
            d.add_dep(ld, m, 0);
            m
        } else {
            ld
        };
        heads.push(op);
    }
    // Late pairwise reduction tree keeps everything live a long time.
    let mut layer = heads;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len() / 2 + 1);
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                let j = d.add_op(LoopOp::alu());
                d.add_dep(pair[0], j, 0);
                d.add_dep(pair[1], j, 0);
                next.push(j);
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    // Final accumulator recurrence.
    let root = layer[0];
    let acc = d.add_op(LoopOp::alu());
    d.add_dep(root, acc, 0);
    d.add_dep(acc, acc, 1);
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra_sim::VliwConfig;
    use dra_swp::{kernel::max_live, modulo_schedule};

    fn small_suite() -> Vec<SuiteLoop> {
        generate_loop_suite(&LoopSuiteConfig {
            n_loops: 120,
            hungry_fraction: 0.11,
            seed: 42,
        })
    }

    #[test]
    fn suite_size_and_hungry_count() {
        let s = small_suite();
        assert_eq!(s.len(), 120);
        let hungry = s.iter().filter(|l| l.hungry).count();
        assert_eq!(hungry, 13, "11% of 120, rounded");
    }

    #[test]
    fn deterministic() {
        let a = small_suite();
        let b = small_suite();
        assert_eq!(a, b);
    }

    #[test]
    fn hungry_loops_are_bigger() {
        let s = small_suite();
        let avg = |hungry: bool| {
            let v: Vec<usize> = s
                .iter()
                .filter(|l| l.hungry == hungry)
                .map(|l| l.ddg.len())
                .collect();
            v.iter().sum::<usize>() as f64 / v.len() as f64
        };
        assert!(
            avg(true) > 2.0 * avg(false),
            "hungry {} vs common {}",
            avg(true),
            avg(false)
        );
    }

    #[test]
    fn hungry_loops_exceed_32_registers() {
        let s = small_suite();
        let m = VliwConfig::default();
        let mut exceeded = 0;
        let mut total = 0;
        for l in s.iter().filter(|l| l.hungry).take(6) {
            total += 1;
            let sched = modulo_schedule(&l.ddg, &m, 512).expect("schedulable");
            if max_live(&l.ddg, &sched) > 32 {
                exceeded += 1;
            }
        }
        assert!(
            exceeded >= total - 1,
            "only {exceeded}/{total} hungry loops exceed 32 registers"
        );
    }

    #[test]
    fn common_loops_fit_32_registers() {
        let s = small_suite();
        let m = VliwConfig::default();
        for l in s.iter().filter(|l| !l.hungry).take(10) {
            let sched = modulo_schedule(&l.ddg, &m, 512).expect("schedulable");
            assert!(
                max_live(&l.ddg, &sched) <= 32,
                "common loop {} needs {} registers",
                l.index,
                max_live(&l.ddg, &sched)
            );
        }
    }

    #[test]
    fn all_loops_schedulable() {
        let s = small_suite();
        let m = VliwConfig::default();
        for l in &s {
            assert!(
                modulo_schedule(&l.ddg, &m, 512).is_some(),
                "loop {} unschedulable",
                l.index
            );
        }
    }

    #[test]
    fn trip_counts_positive() {
        for l in &small_suite() {
            assert!(l.ddg.trip_count >= 50);
        }
    }
}
