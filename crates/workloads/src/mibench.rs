//! Mibench-like synthetic benchmark programs.
//!
//! Each benchmark is a seeded generator configuration tuned to echo the
//! structure of its namesake: crypto kernels (`sha`, `blowfish`) carry
//! large working sets (high register pressure); `crc32` and `adpcm` are
//! tight low-pressure loops; `qsort` and `dijkstra` are call- and
//! branch-heavy; `basicmath` leans on multiplies and divides. All
//! programs are straight IR, terminate by construction (counted loops
//! only), and are fully deterministic for a given spec.

use dra_ir::{BinOp, Cond, FunctionBuilder, Program, Reg, VReg};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generator knobs for one benchmark.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchSpec {
    /// Benchmark name.
    pub name: &'static str,
    /// RNG seed (fixed per benchmark for reproducibility).
    pub seed: u64,
    /// Number of functions (entry + leaves).
    pub funcs: usize,
    /// Live working-set size — the register-pressure knob.
    pub pressure: usize,
    /// Straight-line expression instructions per block.
    pub block_len: usize,
    /// Loop regions per function.
    pub loops_per_func: usize,
    /// Maximum loop nesting depth.
    pub max_depth: u32,
    /// Probability that an expression step touches memory.
    pub mem_ratio: f64,
    /// Probability of a call step (entry function only).
    pub call_ratio: f64,
    /// Probability of an if-else region per loop body.
    pub branch_ratio: f64,
    /// Trip count range for generated loops.
    pub trip_range: (i32, i32),
    /// Weight of multiply/divide in the opcode mix.
    pub muldiv_ratio: f64,
}

/// The ten benchmark specs (names follow the Mibench suite).
pub fn benchmark_names() -> Vec<&'static str> {
    SPECS.iter().map(|s| s.name).collect()
}

const SPECS: &[BenchSpec] = &[
    BenchSpec {
        name: "bitcount",
        seed: 0xb17c0047,
        funcs: 3,
        pressure: 9,
        block_len: 10,
        loops_per_func: 2,
        max_depth: 2,
        mem_ratio: 0.05,
        call_ratio: 0.08,
        branch_ratio: 0.3,
        trip_range: (8, 24),
        muldiv_ratio: 0.02,
    },
    BenchSpec {
        name: "qsort",
        seed: 0x45047,
        funcs: 5,
        pressure: 8,
        block_len: 8,
        loops_per_func: 2,
        max_depth: 2,
        mem_ratio: 0.30,
        call_ratio: 0.18,
        branch_ratio: 0.5,
        trip_range: (4, 16),
        muldiv_ratio: 0.03,
    },
    BenchSpec {
        name: "dijkstra",
        seed: 0xd17457,
        funcs: 4,
        pressure: 10,
        block_len: 9,
        loops_per_func: 3,
        max_depth: 2,
        mem_ratio: 0.28,
        call_ratio: 0.10,
        branch_ratio: 0.45,
        trip_range: (6, 20),
        muldiv_ratio: 0.02,
    },
    BenchSpec {
        name: "blowfish",
        seed: 0xb10f15,
        funcs: 3,
        pressure: 15,
        block_len: 16,
        loops_per_func: 2,
        max_depth: 2,
        mem_ratio: 0.22,
        call_ratio: 0.05,
        branch_ratio: 0.15,
        trip_range: (8, 16),
        muldiv_ratio: 0.04,
    },
    BenchSpec {
        name: "sha",
        seed: 0x54a,
        funcs: 3,
        pressure: 16,
        block_len: 18,
        loops_per_func: 2,
        max_depth: 2,
        mem_ratio: 0.18,
        call_ratio: 0.05,
        branch_ratio: 0.1,
        trip_range: (10, 20),
        muldiv_ratio: 0.03,
    },
    BenchSpec {
        name: "crc32",
        seed: 0xc4c32,
        funcs: 2,
        pressure: 6,
        block_len: 9,
        loops_per_func: 2,
        max_depth: 1,
        mem_ratio: 0.25,
        call_ratio: 0.02,
        branch_ratio: 0.2,
        trip_range: (16, 48),
        muldiv_ratio: 0.0,
    },
    BenchSpec {
        name: "fft",
        seed: 0xff7,
        funcs: 4,
        pressure: 13,
        block_len: 14,
        loops_per_func: 3,
        max_depth: 3,
        mem_ratio: 0.20,
        call_ratio: 0.08,
        branch_ratio: 0.2,
        trip_range: (4, 12),
        muldiv_ratio: 0.20,
    },
    BenchSpec {
        name: "stringsearch",
        seed: 0x5745,
        funcs: 3,
        pressure: 7,
        block_len: 8,
        loops_per_func: 2,
        max_depth: 2,
        mem_ratio: 0.30,
        call_ratio: 0.10,
        branch_ratio: 0.55,
        trip_range: (6, 24),
        muldiv_ratio: 0.0,
    },
    BenchSpec {
        name: "adpcm",
        seed: 0xadc,
        funcs: 3,
        pressure: 8,
        block_len: 12,
        loops_per_func: 2,
        max_depth: 1,
        mem_ratio: 0.20,
        call_ratio: 0.03,
        branch_ratio: 0.4,
        trip_range: (16, 40),
        muldiv_ratio: 0.05,
    },
    BenchSpec {
        name: "basicmath",
        seed: 0xba51c,
        funcs: 4,
        pressure: 11,
        block_len: 12,
        loops_per_func: 2,
        max_depth: 2,
        mem_ratio: 0.10,
        call_ratio: 0.12,
        branch_ratio: 0.25,
        trip_range: (6, 16),
        muldiv_ratio: 0.25,
    },
];

/// Generate a benchmark program by name.
///
/// # Panics
///
/// Panics on an unknown name; see [`benchmark_names`].
pub fn benchmark(name: &str) -> Program {
    let spec = SPECS
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("unknown benchmark `{name}`"));
    generate(spec)
}

/// Generate a program from an explicit spec.
pub fn generate(spec: &BenchSpec) -> Program {
    let shape = FuncShape::from_spec(spec);
    let shapes = vec![shape; spec.funcs];
    gen_program(spec.name, &shapes, spec.seed)
}

/// Per-function generator knobs — the shape-driven core shared by the
/// named [`BenchSpec`] benchmarks and the profile-driven corpus
/// generator. One `FuncShape` per generated function.
#[derive(Clone, Debug)]
pub struct FuncShape {
    /// Live working-set size — the register-pressure knob.
    pub pressure: usize,
    /// Mibench pressure concentration: entry keeps `pressure`, other
    /// functions drop to a small working set (with an RNG draw, so the
    /// historical benchmark byte streams are preserved). Profile-driven
    /// shapes set this false and give every function its own pressure.
    pub hot_entry: bool,
    /// Straight-line expression instructions per block.
    pub block_len: usize,
    /// Loop regions per function (0 = straight-line with one diamond).
    pub loops_per_func: usize,
    /// Maximum loop nesting depth.
    pub max_depth: u32,
    /// Probability that an expression step touches memory.
    pub mem_ratio: f64,
    /// Probability of a call step.
    pub call_ratio: f64,
    /// Probability of an if-else region per loop body.
    pub branch_ratio: f64,
    /// Trip count range for generated loops.
    pub trip_range: (i32, i32),
    /// Weight of multiply/divide in the opcode mix.
    pub muldiv_ratio: f64,
}

impl FuncShape {
    fn from_spec(spec: &BenchSpec) -> FuncShape {
        FuncShape {
            pressure: spec.pressure,
            hot_entry: true,
            block_len: spec.block_len,
            loops_per_func: spec.loops_per_func,
            max_depth: spec.max_depth,
            mem_ratio: spec.mem_ratio,
            call_ratio: spec.call_ratio,
            branch_ratio: spec.branch_ratio,
            trip_range: spec.trip_range,
            muldiv_ratio: spec.muldiv_ratio,
        }
    }
}

/// Generate one program from per-function shapes under one seed. Function
/// `i` is named `{name}_{i}`; the entry is function 0; calls only target
/// later indices (acyclic by construction) and the last function is the
/// loop-free leaf.
pub fn gen_program(name: &str, shapes: &[FuncShape], seed: u64) -> Program {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_funcs = shapes.len();
    let mut funcs = Vec::with_capacity(n_funcs);
    for (fi, shape) in shapes.iter().enumerate() {
        let is_entry = fi == 0;
        let callees: Vec<u32> = (fi as u32 + 1..n_funcs as u32).collect();
        funcs.push(gen_function(shape, name, &mut rng, fi, n_funcs, is_entry, &callees));
    }
    let mut p = Program { funcs, entry: 0 };
    for f in &mut p.funcs {
        dra_ir::loops::assign_static_frequencies(f);
    }
    dra_ir::validate::validate_program(&p).expect("generated program is valid");
    p
}

/// Global data region base address used by generated memory traffic.
const DATA_BASE: i32 = 0x1000;
/// Size of the data region each function scribbles in (bytes).
const DATA_SIZE: i32 = 2048;

struct Ctx<'a> {
    spec: &'a FuncShape,
    rng: &'a mut SmallRng,
    /// Live working set.
    ws: Vec<VReg>,
    /// Base register holding DATA_BASE.
    base: VReg,
    callees: &'a [u32],
    allow_calls: bool,
    /// Most recently defined value — expression steps chain through it
    /// (like real expression trees), giving the access sequence the
    /// locality real code has.
    last_def: Option<VReg>,
    /// Recently touched values; operand picks are biased toward these.
    /// Real code exhibits strong temporal locality — an expression's
    /// operands overwhelmingly come from values touched moments ago —
    /// and the differential encoding's economics depend on it.
    recent: Vec<VReg>,
    /// The designated leaf function (loop-free), the only legal call
    /// target from inside a loop.
    leaf: Option<u32>,
    /// Current loop-nesting depth during generation. Outside loops a call
    /// may target any later function; inside loops only the loop-free
    /// leaf, so dynamic instruction counts stay bounded (a call chain
    /// inside nested loops multiplies trip counts into the millions).
    loop_depth: u32,
}

impl Ctx<'_> {
    fn pick(&mut self) -> Reg {
        // Prefer recently-touched values (temporal locality); fall back to
        // a uniform draw from the working set.
        let recent: Vec<VReg> = self
            .recent
            .iter()
            .rev()
            .filter(|v| self.ws.contains(v))
            .take(3)
            .copied()
            .collect();
        let v = if !recent.is_empty() && self.rng.gen_bool(0.65) {
            recent[self.rng.gen_range(0..recent.len())]
        } else {
            self.ws[self.rng.gen_range(0..self.ws.len())]
        };
        self.touch(v);
        v.into()
    }

    fn touch(&mut self, v: VReg) {
        self.recent.retain(|&x| x != v);
        self.recent.push(v);
        if self.recent.len() > 6 {
            self.recent.remove(0);
        }
    }

    fn pick_op(&mut self) -> BinOp {
        if self.rng.gen_bool(self.spec.muldiv_ratio) {
            if self.rng.gen_bool(0.5) {
                BinOp::Mul
            } else {
                BinOp::Div
            }
        } else {
            match self.rng.gen_range(0..6) {
                0 => BinOp::Add,
                1 => BinOp::Sub,
                2 => BinOp::And,
                3 => BinOp::Or,
                4 => BinOp::Xor,
                _ => BinOp::Shl,
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn gen_function(
    spec: &FuncShape,
    name: &str,
    rng: &mut SmallRng,
    index: usize,
    n_funcs: usize,
    is_entry: bool,
    callees: &[u32],
) -> dra_ir::Function {
    let is_leaf = index + 1 == n_funcs;
    // Register pressure concentrates in one hot function — the paper's
    // premise is that "in most cases register pressure is lower than the
    // number of architected registers" with localized hot regions (from
    // inlining, unrolling, crypto rounds …). The rest of the program runs
    // a small working set. Profile-driven shapes (`hot_entry == false`)
    // instead carry a per-function pressure sampled from the histogram.
    let pressure = if !spec.hot_entry || index == 0 {
        spec.pressure
    } else {
        spec.pressure.min(4 + rng.gen_range(0..=2))
    };
    let mut b = FunctionBuilder::new(format!("{name}_{index}"));
    // Parameters feed the working set.
    let n_params = if is_entry { 0 } else { rng.gen_range(1..=2) };
    let mut ws: Vec<VReg> = (0..n_params).map(|_| b.new_param()).collect();
    // Fill the rest of the working set with immediates.
    while ws.len() < pressure {
        let v = b.new_vreg();
        b.mov_imm(v, rng.gen_range(1..1000));
        ws.push(v);
    }
    let base = b.new_vreg();
    b.mov_imm(base, DATA_BASE);

    let mut ctx = Ctx {
        spec,
        rng,
        ws,
        base,
        callees,
        allow_calls: !callees.is_empty(),
        last_def: None,
        recent: Vec::new(),
        leaf: if n_funcs >= 2 && !is_leaf {
            Some(n_funcs as u32 - 1)
        } else {
            None
        },
        loop_depth: 0,
    };

    // The mibench path keeps its leaf loop-free (calls inside loops
    // target it, and a loopy leaf would multiply dynamic trip counts);
    // profile-driven corpora are compile/check workloads, never
    // simulated, so their leaves follow the sampled shape.
    if (is_leaf && spec.hot_entry) || spec.loops_per_func == 0 {
        // The leaf kernel (or a deliberately loop-free shape):
        // straight-line pressure, one diamond, no loops.
        gen_straight(&mut b, &mut ctx, spec.block_len * 2);
        gen_branch(&mut b, &mut ctx);
        gen_straight(&mut b, &mut ctx, spec.block_len);
    } else {
        for _ in 0..spec.loops_per_func {
            gen_loop(&mut b, &mut ctx, spec.max_depth);
            gen_straight(&mut b, &mut ctx, spec.block_len / 2);
        }
    }

    // Fold the working set into a return value.
    let acc = b.new_vreg();
    b.mov_imm(acc, 0);
    let items: Vec<VReg> = ctx.ws.clone();
    for v in items {
        b.bin(BinOp::Xor, acc, acc.into(), v.into());
    }
    b.ret(Some(acc.into()));
    b.finish()
}

/// Emit `n` expression/memory/call steps into the current block.
fn gen_straight(b: &mut FunctionBuilder, ctx: &mut Ctx<'_>, n: usize) {
    for _ in 0..n {
        let roll: f64 = ctx.rng.gen();
        if roll < ctx.spec.mem_ratio {
            // Memory step: store then load (or vice versa).
            let off = ctx.rng.gen_range(0..DATA_SIZE / 8) * 8;
            if ctx.rng.gen_bool(0.5) {
                let src = ctx.pick();
                b.store(src, ctx.base.into(), off);
            } else {
                let dst = ctx.replace_ws_slot(b);
                b.load(dst, ctx.base.into(), off);
                ctx.last_def = Some(dst);
            }
        } else if ctx.allow_calls && roll < ctx.spec.mem_ratio + ctx.spec.call_ratio {
            let callee = if ctx.loop_depth == 0 {
                Some(ctx.callees[ctx.rng.gen_range(0..ctx.callees.len())])
            } else {
                ctx.leaf
            };
            if let Some(callee) = callee {
                let n_args = ctx.rng.gen_range(1..=2);
                let args: Vec<Reg> = (0..n_args).map(|_| ctx.pick()).collect();
                let dst = ctx.replace_ws_slot(b);
                b.call(callee, args, Some(dst));
                ctx.last_def = Some(dst);
            }
        } else {
            // Expression step: new value chaining through the previous
            // result most of the time (expression-tree locality), from
            // two random live values otherwise.
            let op = ctx.pick_op();
            let l = match ctx.last_def {
                Some(v) if ctx.rng.gen_bool(0.6) => v.into(),
                _ => ctx.pick(),
            };
            let r = ctx.pick();
            let dst = ctx.replace_ws_slot(b);
            if ctx.rng.gen_bool(0.25) {
                let imm = ctx.rng.gen_range(1..64);
                b.bin_imm(op, dst, l, imm);
            } else {
                b.bin(op, dst, l, r);
            }
            ctx.last_def = Some(dst);
        }
    }
}

impl Ctx<'_> {
    /// A fresh vreg replacing a random working-set slot (keeps pressure
    /// constant while forcing new live ranges).
    fn replace_ws_slot(&mut self, b: &mut FunctionBuilder) -> VReg {
        let v = b.new_vreg();
        let slot = self.rng.gen_range(0..self.ws.len());
        self.ws[slot] = v;
        self.touch(v);
        v
    }
}

/// Emit a counted loop: init, header with exit test, body (recursive
/// regions), increment, backedge.
fn gen_loop(b: &mut FunctionBuilder, ctx: &mut Ctx<'_>, depth: u32) {
    let (lo, hi) = ctx.spec.trip_range;
    // Nested loops run shorter so total dynamic work stays bounded.
    let shrink = 1 << (2 * ctx.loop_depth.min(3));
    let trips = (ctx.rng.gen_range(lo..=hi) / shrink).max(2);
    ctx.loop_depth += 1;
    let i = b.new_vreg();
    let n = b.new_vreg();
    b.mov_imm(i, 0);
    b.mov_imm(n, trips);

    let header = b.new_block();
    let body = b.new_block();
    let exit = b.new_block();
    b.br(header);
    b.switch_to(header);
    b.cond_br(Cond::Lt, i.into(), n.into(), body, exit);
    b.switch_to(body);

    let snapshot = ctx.ws.clone();
    ctx.last_def = None; // body entry: the previous value may be path-local
    ctx.recent.clear();
    gen_straight(b, ctx, ctx.spec.block_len);
    if ctx.rng.gen_bool(ctx.spec.branch_ratio) {
        gen_branch(b, ctx);
    }
    if depth > 1 && ctx.rng.gen_bool(0.4) {
        gen_loop(b, ctx, depth - 1);
    }

    // Close a few loop-carried dependences: copy this iteration's values
    // back into the loop-header names. These moves are live around the
    // backedge (real recurrences) and are exactly the coalescing
    // candidates the differential coalesce stage feeds on. Only a handful
    // per loop — one per changed slot would double the loop's register
    // pressure with shadow copies.
    let mut changed: Vec<usize> = (0..snapshot.len())
        .filter(|&s| ctx.ws[s] != snapshot[s])
        .collect();
    while changed.len() > 4 {
        let k = ctx.rng.gen_range(0..changed.len());
        changed.remove(k);
    }
    for slot in changed {
        b.mov(snapshot[slot], ctx.ws[slot].into());
    }
    ctx.ws = snapshot;

    b.bin_imm(BinOp::Add, i, i.into(), 1);
    b.br(header);
    b.switch_to(exit);
    ctx.last_def = None; // values chained inside the body are not
                         // definitely assigned on the zero-trip path
    ctx.recent.clear();
    ctx.loop_depth -= 1;
    // `i`'s final value joins the working set (live-out of the loop).
    let slot = ctx.rng.gen_range(0..ctx.ws.len());
    ctx.ws[slot] = i;
}

/// Emit an if-else diamond. The working set is snapshotted around each arm
/// so that no value defined on only one path is ever used after the join —
/// otherwise program results would depend on the register allocator, and
/// the "all allocators compute the same answer" invariant the test suite
/// checks would not hold. Arm-local values still exert register pressure
/// inside the arms.
fn gen_branch(b: &mut FunctionBuilder, ctx: &mut Ctx<'_>) {
    let l = ctx.pick();
    let r = ctx.pick();
    let conds = Cond::ALL;
    let cond = conds[ctx.rng.gen_range(0..conds.len())];
    let then_bb = b.new_block();
    let else_bb = b.new_block();
    let join = b.new_block();
    b.cond_br(cond, l, r, then_bb, else_bb);
    let snapshot = ctx.ws.clone();
    ctx.last_def = None;
    ctx.recent.clear();
    b.switch_to(then_bb);
    gen_straight(b, ctx, ctx.spec.block_len / 2);
    b.br(join);
    ctx.ws = snapshot.clone();
    ctx.last_def = None;
    ctx.recent.clear();
    b.switch_to(else_bb);
    gen_straight(b, ctx, ctx.spec.block_len / 2);
    b.br(join);
    ctx.ws = snapshot;
    ctx.last_def = None; // neither arm's chain survives the join
    ctx.recent.clear();
    b.switch_to(join);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra_ir::Liveness;

    #[test]
    fn ten_benchmarks_exist() {
        assert_eq!(benchmark_names().len(), 10);
        assert!(benchmark_names().contains(&"sha"));
        assert!(benchmark_names().contains(&"crc32"));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = benchmark("qsort");
        let b = benchmark("qsort");
        assert_eq!(a, b);
    }

    #[test]
    fn all_benchmarks_are_valid_programs() {
        for name in benchmark_names() {
            let p = benchmark(name);
            dra_ir::validate::validate_program(&p).unwrap_or_else(|e| {
                panic!("{name}: {e}");
            });
            assert!(p.num_insts() > 100, "{name} too small: {}", p.num_insts());
        }
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_name_panics() {
        let _ = benchmark("doom");
    }

    #[test]
    fn pressure_spec_is_reflected_in_liveness() {
        let sha = benchmark("sha");
        let crc = benchmark("crc32");
        let max_p = |p: &Program| {
            p.funcs
                .iter()
                .map(|f| Liveness::compute(f).max_pressure(f))
                .max()
                .unwrap()
        };
        assert!(
            max_p(&sha) > max_p(&crc),
            "sha ({}) should out-pressure crc32 ({})",
            max_p(&sha),
            max_p(&crc)
        );
        assert!(max_p(&sha) >= 14, "sha pressure {}", max_p(&sha));
    }

    #[test]
    fn benchmarks_have_loops() {
        for name in benchmark_names() {
            let p = benchmark(name);
            let has_loop = p
                .funcs
                .iter()
                .any(|f| !dra_ir::loops::find_loops(f).is_empty());
            assert!(has_loop, "{name} lacks loops");
        }
    }

    #[test]
    fn call_targets_are_acyclic() {
        for name in benchmark_names() {
            let p = benchmark(name);
            for (fi, f) in p.funcs.iter().enumerate() {
                for i in f.iter_insts() {
                    if let dra_ir::Inst::Call { callee, .. } = i {
                        assert!(
                            (*callee as usize) > fi,
                            "{name}: f{fi} calls f{callee} (possible recursion)"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn frequencies_assigned() {
        let p = benchmark("bitcount");
        let has_hot_block = p
            .funcs
            .iter()
            .flat_map(|f| f.blocks.iter())
            .any(|b| b.freq >= 10.0);
        assert!(has_hot_block, "loop bodies should carry frequency > 1");
    }
}

#[cfg(test)]
mod locality_tests {
    use super::*;
    use dra_adjgraph::AccessSequence;
    use dra_ir::RegClass;

    /// The generator's chaining/recency biases must yield access
    /// sequences with real temporal locality — the property the
    /// differential-encoding economics rest on.
    #[test]
    fn access_sequences_have_temporal_locality() {
        let p = benchmark("sha");
        let mut near = 0usize;
        let mut total = 0usize;
        for f in &p.funcs {
            let seq = AccessSequence::of(f, RegClass::Int).flatten();
            for w in seq.windows(4) {
                total += 1;
                // Last access repeats something from the 3 before it?
                if w[..3].contains(&w[3]) {
                    near += 1;
                }
            }
        }
        let frac = near as f64 / total.max(1) as f64;
        assert!(
            frac > 0.35,
            "only {frac:.2} of accesses repeat a recent register"
        );
    }

    #[test]
    fn no_maybe_undefined_uses_in_any_benchmark() {
        // Guard for the last_def/recency machinery: a value chained from
        // a branch arm or a loop body must never be readable on a path
        // that skipped its definition (that would make program results
        // allocation-dependent).
        use dra_ir::Reg;
        for name in benchmark_names() {
            let p = benchmark(name);
            for f in &p.funcs {
                let nv = f.vreg_count as usize;
                let mut inb: Vec<Option<Vec<bool>>> = vec![None; f.num_blocks()];
                inb[f.entry.index()] = Some(vec![false; nv]);
                let rpo = f.reverse_postorder();
                let mut changed = true;
                while changed {
                    changed = false;
                    for &b in &rpo {
                        let bi = b.index();
                        let mut cur = match &inb[bi] {
                            Some(v) => v.clone(),
                            None => continue,
                        };
                        for i in &f.blocks[bi].insts {
                            for d in i.defs() {
                                if let Reg::Virt(v) = d {
                                    cur[v.index()] = true;
                                }
                            }
                        }
                        for &s in &f.blocks[bi].succs {
                            let si = s.index();
                            let merged = match &inb[si] {
                                None => cur.clone(),
                                Some(old) => {
                                    old.iter().zip(&cur).map(|(a, b)| *a && *b).collect()
                                }
                            };
                            if inb[si].as_ref() != Some(&merged) {
                                inb[si] = Some(merged);
                                changed = true;
                            }
                        }
                    }
                }
                for &b in &rpo {
                    let mut cur = inb[b.index()].clone().unwrap();
                    for i in &f.blocks[b.index()].insts {
                        for u in i.uses() {
                            if let Reg::Virt(v) = u {
                                assert!(
                                    cur[v.index()],
                                    "{name}/{}: maybe-undefined use of {v:?} in {b:?}",
                                    f.name
                                );
                            }
                        }
                        for d in i.defs() {
                            if let Reg::Virt(v) = d {
                                cur[v.index()] = true;
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod text_roundtrip_tests {
    use super::*;

    /// Every generated benchmark survives the textual round trip
    /// (`Display` then `dra_ir::parse`): the text form is a faithful
    /// serialization of generator output.
    #[test]
    fn benchmarks_roundtrip_through_text() {
        for name in benchmark_names() {
            let p = benchmark(name);
            let q = dra_ir::parse::parse_program(&p.to_string())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(p, q, "{name} text round trip");
        }
    }
}
