//! Set-associative LRU cache model.

/// Geometry and timing of one cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Extra cycles on a miss (fill from memory).
    pub miss_penalty: u64,
}

impl CacheConfig {
    /// An 8 KiB, 2-way, 32-byte-line cache with a 20-cycle miss penalty —
    /// the low-end default for both I- and D-cache.
    pub fn embedded_8k() -> Self {
        CacheConfig {
            size_bytes: 8 * 1024,
            line_bytes: 32,
            assoc: 2,
            miss_penalty: 20,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u32 {
        self.size_bytes / (self.line_bytes * self.assoc)
    }
}

/// A set-associative cache with true-LRU replacement.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    /// `sets[s][w]` = tag; `u64::MAX` = invalid.
    sets: Vec<Vec<u64>>,
    /// LRU order per set: front = most recent.
    lru: Vec<Vec<u32>>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// An empty (cold) cache.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.line_bytes.is_power_of_two(), "line size not a power of two");
        assert!(cfg.assoc >= 1);
        let sets = cfg.num_sets().max(1);
        Cache {
            cfg,
            sets: vec![vec![u64::MAX; cfg.assoc as usize]; sets as usize],
            lru: (0..sets)
                .map(|_| (0..cfg.assoc).collect())
                .collect(),
            hits: 0,
            misses: 0,
        }
    }

    /// Access `addr`; returns true on hit. Misses allocate (both reads and
    /// writes: write-allocate).
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.cfg.line_bytes as u64;
        let set = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        let ways = &mut self.sets[set];
        if let Some(w) = ways.iter().position(|&t| t == tag) {
            self.hits += 1;
            promote(&mut self.lru[set], w as u32);
            true
        } else {
            self.misses += 1;
            let victim = *self.lru[set].last().expect("nonempty LRU") as usize;
            ways[victim] = tag;
            promote(&mut self.lru[set], victim as u32);
            false
        }
    }

    /// Cycles an access costs beyond the pipeline's base latency.
    pub fn access_cost(&mut self, addr: u64) -> u64 {
        if self.access(addr) {
            0
        } else {
            self.cfg.miss_penalty
        }
    }

    /// Hit count so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }
}

fn promote(order: &mut [u32], way: u32) {
    let pos = order.iter().position(|&w| w == way).expect("way in order");
    order[..=pos].rotate_right(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 16-byte lines = 64 bytes.
        Cache::new(CacheConfig {
            size_bytes: 64,
            line_bytes: 16,
            assoc: 2,
            miss_penalty: 10,
        })
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(15), "same line");
        assert!(!c.access(16), "next line is a different set");
        assert_eq!(c.misses(), 2);
        assert_eq!(c.hits(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 lines: line numbers ≡ 0 (mod 2). Lines 0, 2, 4 → addresses
        // 0, 32, 64.
        c.access(0); // miss, set0 = {0}
        c.access(32); // miss, set0 = {0, 2}
        c.access(0); // hit, 0 most recent
        c.access(64); // miss, evicts line 2
        assert!(c.access(0), "line 0 survived");
        assert!(!c.access(32), "line 2 was evicted");
    }

    #[test]
    fn access_cost_reflects_misses() {
        let mut c = tiny();
        assert_eq!(c.access_cost(0), 10);
        assert_eq!(c.access_cost(0), 0);
    }

    #[test]
    fn embedded_default_geometry() {
        let cfg = CacheConfig::embedded_8k();
        assert_eq!(cfg.num_sets(), 128);
        let c = Cache::new(cfg);
        assert_eq!(c.config().miss_penalty, 20);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = tiny();
        c.access(0); // set 0
        c.access(16); // set 1
        assert!(c.access(0));
        assert!(c.access(16));
    }
}
