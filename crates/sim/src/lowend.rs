//! The low-end machine configuration (the paper's Table 1).
//!
//! An ARM/THUMB-like 5-stage in-order scalar: the ISA exposes 8 registers
//! through 3-bit fields while the hardware holds 16 — the gap differential
//! encoding closes.

use crate::cache::CacheConfig;
use dra_isa::IsaGeometry;

/// Configuration of the 5-stage in-order machine.
#[derive(Clone, Debug, PartialEq)]
pub struct LowEndConfig {
    /// Instruction-word geometry (LEAF16 with 3-bit fields by default).
    pub geometry: IsaGeometry,
    /// Instruction cache.
    pub icache: CacheConfig,
    /// Data cache.
    pub dcache: CacheConfig,
    /// Extra cycles for loads beyond the base CPI (ARM7-style LDR = 3
    /// cycles total).
    pub load_extra: u64,
    /// Extra cycles for stores (ARM7-style STR = 2 cycles total).
    pub store_extra: u64,
    /// Extra execute cycles for multiplies.
    pub mul_latency: u64,
    /// Extra execute cycles for divides/remainders.
    pub div_latency: u64,
    /// Pipeline bubbles on a taken branch (resolved in EX).
    pub taken_branch_penalty: u64,
    /// Extra cycles for call/return control transfers.
    pub call_penalty: u64,
    /// Load-use interlock bubble.
    pub load_use_penalty: u64,
    /// How many decode-stage-removed instructions (`set_last_reg`) the
    /// front end absorbs per cycle. THUMB-style cores fetch two 16-bit
    /// words per 32-bit bus access, so an instruction that vanishes at
    /// decode usually costs only a fraction of a slot; the paper's claim
    /// that `set_last_reg` "does not exist" past decode rests on this.
    pub slr_per_cycle: u64,
    /// Safety cap on executed instructions.
    pub max_steps: u64,
}

impl Default for LowEndConfig {
    fn default() -> Self {
        LowEndConfig {
            geometry: IsaGeometry::leaf16(3),
            icache: CacheConfig::embedded_8k(),
            dcache: CacheConfig::embedded_8k(),
            load_extra: 2,
            store_extra: 1,
            mul_latency: 2,
            div_latency: 10,
            taken_branch_penalty: 2,
            call_penalty: 2,
            load_use_penalty: 1,
            slr_per_cycle: 2,
            max_steps: 200_000_000,
        }
    }
}

impl LowEndConfig {
    /// Render the configuration as the paper's Table 1 rows.
    pub fn table1(&self) -> Vec<(String, String)> {
        vec![
            ("Pipeline".into(), "5-stage, in-order, single issue".into()),
            (
                "ISA".into(),
                format!(
                    "LEAF16: {}-bit words, {}-bit register fields",
                    self.geometry.word_bits, self.geometry.reg_field_bits
                ),
            ),
            (
                "Architected registers (direct)".into(),
                format!("{}", 1u32 << self.geometry.reg_field_bits),
            ),
            ("Physical registers".into(), "16".into()),
            (
                "I-cache".into(),
                format!(
                    "{} KiB, {}-way, {} B lines, {}-cycle miss",
                    self.icache.size_bytes / 1024,
                    self.icache.assoc,
                    self.icache.line_bytes,
                    self.icache.miss_penalty
                ),
            ),
            (
                "D-cache".into(),
                format!(
                    "{} KiB, {}-way, {} B lines, {}-cycle miss",
                    self.dcache.size_bytes / 1024,
                    self.dcache.assoc,
                    self.dcache.line_bytes,
                    self.dcache.miss_penalty
                ),
            ),
            ("Load latency".into(), format!("{} cycles", 1 + self.load_extra)),
            ("Store latency".into(), format!("{} cycles", 1 + self.store_extra)),
            ("Multiply latency".into(), format!("{} cycles", 1 + self.mul_latency)),
            ("Divide latency".into(), format!("{} cycles", 1 + self.div_latency)),
            (
                "Taken-branch penalty".into(),
                format!("{} cycles", self.taken_branch_penalty),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_thumb_like() {
        let c = LowEndConfig::default();
        assert_eq!(c.geometry.word_bits, 16);
        assert_eq!(c.geometry.reg_field_bits, 3);
        assert_eq!(c.icache.size_bytes, 8 * 1024);
    }

    #[test]
    fn table1_mentions_the_register_split() {
        let rows = LowEndConfig::default().table1();
        let arch = rows
            .iter()
            .find(|(k, _)| k.contains("Architected"))
            .unwrap();
        assert_eq!(arch.1, "8");
        let phys = rows.iter().find(|(k, _)| k.contains("Physical")).unwrap();
        assert_eq!(phys.1, "16");
    }
}
