//! The functional + timing executor for the low-end machine.
//!
//! Executes fully-allocated [`Program`]s instruction by instruction,
//! maintaining architectural state (register files, memory, a call stack)
//! while charging cycles per the 5-stage in-order model:
//!
//! * every instruction word fetched goes through the I-cache;
//! * loads/stores (including spill traffic) go through the D-cache;
//! * `set_last_reg` occupies a fetch/decode slot (1 cycle + I-cache) but
//!   never executes — the paper's "removed after decoding";
//! * taken branches, calls, returns, multiplies and divides pay their
//!   configured penalties; a load feeding the next instruction pays the
//!   load-use interlock.
//!
//! Each activation gets a fresh register file and a private spill-slot
//! frame (see DESIGN.md §4 — calling-convention pressure is modeled through
//! the allocator's `call_clobbers` instead of architectural clobbering).

use crate::cache::Cache;
use crate::lowend::LowEndConfig;
use dra_ir::{BinOp, BlockId, Function, Inst, Program, Reg};
use dra_isa::words_for_inst;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Simulation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The step cap was exceeded (runaway program).
    StepLimit {
        /// The configured cap.
        max_steps: u64,
    },
    /// An instruction referenced a virtual register.
    VirtualRegister {
        /// Function index.
        func: u32,
    },
    /// Return from the entry activation with a pending call stack
    /// underflow or malformed control transfer.
    ControlError {
        /// Description.
        what: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::StepLimit { max_steps } => {
                write!(f, "exceeded {max_steps} simulated instructions")
            }
            SimError::VirtualRegister { func } => {
                write!(f, "unallocated virtual register in f{func}")
            }
            SimError::ControlError { what } => write!(f, "control error: {what}"),
        }
    }
}

impl Error for SimError {}

/// Measured outcome of one simulation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimResult {
    /// Total cycles.
    pub cycles: u64,
    /// Instructions fetched (including `set_last_reg`).
    pub insts_fetched: u64,
    /// Instructions executed (excluding `set_last_reg`).
    pub insts_executed: u64,
    /// Dynamic spill loads + stores.
    pub spill_accesses: u64,
    /// Dynamic `set_last_reg` count.
    pub set_last_regs: u64,
    /// I-cache misses.
    pub icache_misses: u64,
    /// D-cache misses.
    pub dcache_misses: u64,
    /// Value returned by the entry function (if any).
    pub ret_value: Option<i64>,
    /// Dynamic block trace of the entry function's outermost activation
    /// (capped; used by encoding round-trip tests).
    pub entry_trace: Vec<BlockId>,
    /// Execution count per `(function, block)` — the profile that
    /// Section 4's "profile information could be incorporated" feeds back
    /// into the adjacency-graph weights.
    pub block_counts: HashMap<(u32, u32), u64>,
}

impl SimResult {
    /// The deterministic scalar measurements as `(name, value)` pairs,
    /// named for the telemetry registry (`sim.*`). The simulator is fully
    /// deterministic, so these are pure functions of the simulated
    /// program and machine configuration.
    pub fn counters(&self) -> [(&'static str, u64); 7] {
        [
            ("sim.cycles", self.cycles),
            ("sim.insts_fetched", self.insts_fetched),
            ("sim.insts_executed", self.insts_executed),
            ("sim.spill_accesses", self.spill_accesses),
            ("sim.set_last_regs", self.set_last_regs),
            ("sim.icache_misses", self.icache_misses),
            ("sim.dcache_misses", self.dcache_misses),
        ]
    }
}

const TRACE_CAP: usize = 4096;
/// Each activation's spill frame is this many bytes apart on the stack.
const FRAME_BYTES: u64 = 1 << 12;
/// Stack area base address (grows upward, frames never freed-and-reused
/// within one simulation for address stability).
const STACK_BASE: u64 = 0x4000_0000;

struct Activation {
    func: u32,
    block: usize,
    inst: usize,
    regs: [i64; 64],
    frame_base: u64,
    args: Vec<i64>,
    /// Register receiving the callee's return value.
    ret_to: Option<u8>,
}

/// Execute `p` from its entry function with `args`.
///
/// # Errors
///
/// See [`SimError`].
pub fn simulate(p: &Program, cfg: &LowEndConfig, args: &[i64]) -> Result<SimResult, SimError> {
    // Static layout: instruction addresses for I-cache simulation.
    let layout = layout_code(p, cfg);

    let mut icache = Cache::new(cfg.icache);
    let mut dcache = Cache::new(cfg.dcache);
    let mut mem: HashMap<u64, i64> = HashMap::new();
    let mut res = SimResult::default();

    let mut next_frame = STACK_BASE;
    let mut stack: Vec<Activation> = vec![Activation {
        func: p.entry,
        block: p.entry_func().entry.index(),
        inst: 0,
        regs: [0; 64],
        frame_base: next_frame,
        args: args.to_vec(),
        ret_to: None,
    }];
    next_frame += FRAME_BYTES;
    res.entry_trace.push(p.entry_func().entry);
    *res
        .block_counts
        .entry((p.entry, p.entry_func().entry.0))
        .or_insert(0) += 1;

    // Load-use interlock state: destination of the previous instruction if
    // it was a load.
    let mut pending_load_dst: Option<u8> = None;
    // Fractional accounting for decode-removed set_last_reg slots.
    let mut slr_budget: u64 = 0;

    while let Some(act) = stack.last_mut() {
        if res.insts_fetched >= cfg.max_steps {
            return Err(SimError::StepLimit {
                max_steps: cfg.max_steps,
            });
        }
        let f: &Function = &p.funcs[act.func as usize];
        let blk = &f.blocks[act.block];
        let Some(inst) = blk.insts.get(act.inst) else {
            return Err(SimError::ControlError {
                what: format!("fell off the end of {} {}", f.name, BlockId(act.block as u32)),
            });
        };

        // Fetch: every word of the instruction goes through the I-cache.
        let addr = layout[&(act.func, act.block, act.inst)];
        let words = words_for_inst(inst, &cfg.geometry) as u64;
        let word_bytes = (cfg.geometry.word_bits / 8) as u64;
        let mut cycles = 1; // base CPI of the in-order scalar
        for w in 0..words {
            cycles += icache.access_cost(addr + w * word_bytes);
        }
        res.insts_fetched += 1;

        // Load-use interlock check.
        if let Some(dst) = pending_load_dst.take() {
            let uses_loaded = inst
                .uses()
                .iter()
                .any(|r| matches!(r, Reg::Phys(pr) if pr.number() == dst));
            if uses_loaded {
                cycles += cfg.load_use_penalty;
            }
        }

        let read = |act: &Activation, r: Reg| -> Result<i64, SimError> {
            match r {
                Reg::Phys(pr) => Ok(act.regs[pr.index()]),
                Reg::Virt(_) => Err(SimError::VirtualRegister { func: act.func }),
            }
        };
        let reg_no = |r: Reg| -> Result<u8, SimError> {
            match r {
                Reg::Phys(pr) => Ok(pr.number()),
                Reg::Virt(_) => Err(SimError::VirtualRegister { func: 0 }),
            }
        };

        let mut next: Option<usize> = None; // branch target (block index)
        match inst {
            Inst::SetLastReg { .. } => {
                // Consumed at decode; no execute, no architectural effect.
                // The front end absorbs `slr_per_cycle` of these per
                // fetch-decode cycle, so only every n-th one stalls.
                res.set_last_regs += 1;
                slr_budget += 1;
                let occupancy = if slr_budget >= cfg.slr_per_cycle.max(1) {
                    slr_budget = 0;
                    1
                } else {
                    0
                };
                res.cycles += cycles - 1 + occupancy;
                act.inst += 1;
                continue;
            }
            Inst::Bin { op, dst, lhs, rhs } => {
                let v = op.eval(read(act, *lhs)?, read(act, *rhs)?);
                act.regs[reg_no(*dst)? as usize] = v;
                cycles += op_latency(cfg, *op);
            }
            Inst::BinImm { op, dst, src, imm } => {
                let v = op.eval(read(act, *src)?, *imm as i64);
                act.regs[reg_no(*dst)? as usize] = v;
                cycles += op_latency(cfg, *op);
            }
            Inst::Mov { dst, src } => {
                act.regs[reg_no(*dst)? as usize] = read(act, *src)?;
            }
            Inst::MovImm { dst, imm } => {
                act.regs[reg_no(*dst)? as usize] = *imm as i64;
            }
            Inst::GetParam { dst, index } => {
                let v = act.args.get(*index as usize).copied().unwrap_or(0);
                act.regs[reg_no(*dst)? as usize] = v;
            }
            Inst::Load { dst, base, offset } => {
                let a = (read(act, *base)? as u64).wrapping_add(*offset as i64 as u64);
                let a = a & !7; // word-aligned memory
                cycles += cfg.load_extra + dcache.access_cost(a);
                let v = mem.get(&a).copied().unwrap_or(0);
                let d = reg_no(*dst)?;
                act.regs[d as usize] = v;
                pending_load_dst = Some(d);
            }
            Inst::Store { src, base, offset } => {
                let a = (read(act, *base)? as u64).wrapping_add(*offset as i64 as u64);
                let a = a & !7;
                cycles += cfg.store_extra + dcache.access_cost(a);
                mem.insert(a, read(act, *src)?);
            }
            Inst::SpillLoad { dst, slot } => {
                let a = act.frame_base + slot.0 as u64 * 8;
                cycles += cfg.load_extra + dcache.access_cost(a);
                let v = mem.get(&a).copied().unwrap_or(0);
                let d = reg_no(*dst)?;
                act.regs[d as usize] = v;
                pending_load_dst = Some(d);
                res.spill_accesses += 1;
            }
            Inst::SpillStore { src, slot } => {
                let a = act.frame_base + slot.0 as u64 * 8;
                cycles += cfg.store_extra + dcache.access_cost(a);
                mem.insert(a, read(act, *src)?);
                res.spill_accesses += 1;
            }
            Inst::Br { target } => {
                cycles += cfg.taken_branch_penalty.saturating_sub(1);
                next = Some(target.index());
            }
            Inst::CondBr {
                cond,
                lhs,
                rhs,
                then_bb,
                else_bb,
            } => {
                let taken = cond.eval(read(act, *lhs)?, read(act, *rhs)?);
                let t = if taken { then_bb } else { else_bb };
                if taken {
                    cycles += cfg.taken_branch_penalty;
                }
                next = Some(t.index());
            }
            Inst::Call { callee, args, ret } => {
                cycles += cfg.call_penalty;
                let vals: Result<Vec<i64>, SimError> =
                    args.iter().map(|&a| read(act, a)).collect();
                let vals = vals?;
                let ret_to = match ret {
                    Some(r) => Some(reg_no(*r)?),
                    None => None,
                };
                act.inst += 1; // resume after the call
                let callee_fn = &p.funcs[*callee as usize];
                let new_act = Activation {
                    func: *callee,
                    block: callee_fn.entry.index(),
                    inst: 0,
                    regs: [0; 64],
                    frame_base: next_frame,
                    args: vals,
                    ret_to,
                };
                next_frame += FRAME_BYTES;
                res.insts_executed += 1;
                res.cycles += cycles;
                *res
                    .block_counts
                    .entry((new_act.func, new_act.block as u32))
                    .or_insert(0) += 1;
                stack.push(new_act);
                pending_load_dst = None;
                continue;
            }
            Inst::Ret { value } => {
                cycles += cfg.call_penalty;
                let v = match value {
                    Some(r) => Some(read(act, *r)?),
                    None => None,
                };
                let ret_to = act.ret_to;
                res.insts_executed += 1;
                res.cycles += cycles;
                stack.pop();
                pending_load_dst = None;
                match stack.last_mut() {
                    Some(caller) => {
                        if let (Some(dst), Some(v)) = (ret_to, v) {
                            caller.regs[dst as usize] = v;
                        }
                    }
                    None => {
                        res.ret_value = v;
                        res.icache_misses = icache.misses();
                        res.dcache_misses = dcache.misses();
                        return Ok(res);
                    }
                }
                continue;
            }
            Inst::Nop => {}
        }

        res.insts_executed += 1;
        res.cycles += cycles;
        match next {
            Some(b) => {
                act.block = b;
                act.inst = 0;
                *res
                    .block_counts
                    .entry((act.func, b as u32))
                    .or_insert(0) += 1;
                if act.func == p.entry
                    && stack.len() == 1
                    && res.entry_trace.len() < TRACE_CAP
                {
                    res.entry_trace.push(BlockId(b as u32));
                }
            }
            None => act.inst += 1,
        }
    }
    Err(SimError::ControlError {
        what: "empty call stack".into(),
    })
}

fn op_latency(cfg: &LowEndConfig, op: BinOp) -> u64 {
    match op {
        BinOp::Mul => cfg.mul_latency,
        BinOp::Div | BinOp::Rem => cfg.div_latency,
        _ => 0,
    }
}

/// Assign a static byte address to every instruction (functions and blocks
/// laid out in order).
fn layout_code(
    p: &Program,
    cfg: &LowEndConfig,
) -> HashMap<(u32, usize, usize), u64> {
    let mut layout = HashMap::new();
    let word_bytes = (cfg.geometry.word_bits / 8) as u64;
    let mut addr = 0u64;
    for (fi, f) in p.funcs.iter().enumerate() {
        for (bi, b) in f.blocks.iter().enumerate() {
            for (ii, inst) in b.insts.iter().enumerate() {
                layout.insert((fi as u32, bi, ii), addr);
                addr += words_for_inst(inst, &cfg.geometry) as u64 * word_bytes;
            }
        }
    }
    layout
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra_ir::{Cond, FunctionBuilder, PReg};

    fn phys(n: u8) -> Reg {
        Reg::Phys(PReg(n))
    }

    /// Build a tiny physical-register program: returns 6*7.
    fn mul_prog() -> Program {
        let mut b = FunctionBuilder::new("main");
        b.push(Inst::MovImm { dst: phys(0), imm: 6 });
        b.push(Inst::MovImm { dst: phys(1), imm: 7 });
        b.push(Inst::Bin {
            op: BinOp::Mul,
            dst: phys(2),
            lhs: phys(0),
            rhs: phys(1),
        });
        b.ret(Some(phys(2)));
        Program::single(b.finish())
    }

    #[test]
    fn computes_correct_result() {
        let r = simulate(&mul_prog(), &LowEndConfig::default(), &[]).unwrap();
        assert_eq!(r.ret_value, Some(42));
        assert_eq!(r.insts_executed, 4);
        assert!(r.cycles >= 4);
    }

    #[test]
    fn multiply_costs_extra_cycles() {
        let cfg = LowEndConfig::default();
        let with_mul = simulate(&mul_prog(), &cfg, &[]).unwrap();

        let mut b = FunctionBuilder::new("main");
        b.push(Inst::MovImm { dst: phys(0), imm: 6 });
        b.push(Inst::MovImm { dst: phys(1), imm: 7 });
        b.push(Inst::Bin {
            op: BinOp::Add,
            dst: phys(2),
            lhs: phys(0),
            rhs: phys(1),
        });
        b.ret(Some(phys(2)));
        let with_add = simulate(&Program::single(b.finish()), &cfg, &[]).unwrap();
        assert_eq!(
            with_mul.cycles - with_add.cycles,
            cfg.mul_latency,
            "identical programs except the ALU op"
        );
    }

    #[test]
    fn loop_executes_correct_iteration_count() {
        // acc = sum(0..10) via a counted loop.
        let mut b = FunctionBuilder::new("main");
        b.push(Inst::MovImm { dst: phys(0), imm: 0 }); // i
        b.push(Inst::MovImm { dst: phys(1), imm: 0 }); // acc
        b.push(Inst::MovImm { dst: phys(2), imm: 10 }); // n
        let h = b.new_block();
        let body = b.new_block();
        let ex = b.new_block();
        b.br(h);
        b.switch_to(h);
        b.push(Inst::CondBr {
            cond: Cond::Lt,
            lhs: phys(0),
            rhs: phys(2),
            then_bb: body,
            else_bb: ex,
        });
        b.switch_to(body);
        b.push(Inst::Bin {
            op: BinOp::Add,
            dst: phys(1),
            lhs: phys(1),
            rhs: phys(0),
        });
        b.push(Inst::BinImm {
            op: BinOp::Add,
            dst: phys(0),
            src: phys(0),
            imm: 1,
        });
        b.br(h);
        b.switch_to(ex);
        b.ret(Some(phys(1)));
        let p = Program::single(b.finish());
        let r = simulate(&p, &LowEndConfig::default(), &[]).unwrap();
        assert_eq!(r.ret_value, Some(45));
        // Trace follows the loop: entry, then (h, body)*10, h, exit.
        assert_eq!(r.entry_trace.first(), Some(&BlockId(0)));
        assert_eq!(r.entry_trace.iter().filter(|&&b| b == body).count(), 10);
    }

    #[test]
    fn memory_roundtrip_through_dcache() {
        let mut b = FunctionBuilder::new("main");
        b.push(Inst::MovImm {
            dst: phys(0),
            imm: 0x100,
        });
        b.push(Inst::MovImm { dst: phys(1), imm: 99 });
        b.push(Inst::Store {
            src: phys(1),
            base: phys(0),
            offset: 8,
        });
        b.push(Inst::Load {
            dst: phys(2),
            base: phys(0),
            offset: 8,
        });
        b.ret(Some(phys(2)));
        let r = simulate(&Program::single(b.finish()), &LowEndConfig::default(), &[]).unwrap();
        assert_eq!(r.ret_value, Some(99));
        assert_eq!(r.dcache_misses, 1, "cold miss on the store, hit on the load");
    }

    #[test]
    fn spill_accesses_counted_and_roundtrip() {
        let mut b = FunctionBuilder::new("main");
        b.push(Inst::MovImm { dst: phys(0), imm: 7 });
        b.push(Inst::SpillStore {
            src: phys(0),
            slot: dra_ir::SpillSlot(0),
        });
        b.push(Inst::MovImm { dst: phys(0), imm: 0 });
        b.push(Inst::SpillLoad {
            dst: phys(1),
            slot: dra_ir::SpillSlot(0),
        });
        b.ret(Some(phys(1)));
        let r = simulate(&Program::single(b.finish()), &LowEndConfig::default(), &[]).unwrap();
        assert_eq!(r.ret_value, Some(7));
        assert_eq!(r.spill_accesses, 2);
    }

    #[test]
    fn set_last_reg_fetches_but_does_not_execute() {
        let mut b = FunctionBuilder::new("main");
        b.push(Inst::SetLastReg {
            class: dra_ir::RegClass::Int,
            value: 0,
            delay: 0,
        });
        b.push(Inst::MovImm { dst: phys(0), imm: 1 });
        b.ret(Some(phys(0)));
        let r = simulate(&Program::single(b.finish()), &LowEndConfig::default(), &[]).unwrap();
        assert_eq!(r.set_last_regs, 1);
        assert_eq!(r.insts_fetched, 3);
        assert_eq!(r.insts_executed, 2);
        assert_eq!(r.ret_value, Some(1));
    }

    #[test]
    fn calls_pass_args_and_return_values() {
        // main: r0 = 20; r1 = call add3(r0); ret r1
        let mut m = FunctionBuilder::new("main");
        m.push(Inst::MovImm { dst: phys(0), imm: 20 });
        m.push(Inst::Call {
            callee: 1,
            args: vec![phys(0)],
            ret: Some(phys(1)),
        });
        m.ret(Some(phys(1)));
        // add3(x) = x + 3, with params via GetParam.
        let mut c = FunctionBuilder::new("add3");
        c.push(Inst::GetParam { dst: phys(0), index: 0 });
        c.push(Inst::BinImm {
            op: BinOp::Add,
            dst: phys(1),
            src: phys(0),
            imm: 3,
        });
        c.ret(Some(phys(1)));
        let p = Program {
            funcs: vec![m.finish(), c.finish()],
            entry: 0,
        };
        let r = simulate(&p, &LowEndConfig::default(), &[]).unwrap();
        assert_eq!(r.ret_value, Some(23));
    }

    #[test]
    fn entry_args_via_getparam() {
        let mut b = FunctionBuilder::new("main");
        b.push(Inst::GetParam { dst: phys(0), index: 0 });
        b.ret(Some(phys(0)));
        let r = simulate(
            &Program::single(b.finish()),
            &LowEndConfig::default(),
            &[1234],
        )
        .unwrap();
        assert_eq!(r.ret_value, Some(1234));
    }

    #[test]
    fn runaway_program_hits_step_limit() {
        let mut b = FunctionBuilder::new("main");
        let l = b.new_block();
        b.br(l);
        b.switch_to(l);
        b.br(l);
        let cfg = LowEndConfig {
            max_steps: 1000,
            ..LowEndConfig::default()
        };
        let r = simulate(&Program::single(b.finish()), &cfg, &[]);
        assert!(matches!(r, Err(SimError::StepLimit { .. })));
    }

    #[test]
    fn virtual_register_rejected() {
        let mut b = FunctionBuilder::new("main");
        let v = b.new_vreg();
        b.mov_imm(v, 1);
        b.ret(Some(v.into()));
        let r = simulate(&Program::single(b.finish()), &LowEndConfig::default(), &[]);
        assert!(matches!(r, Err(SimError::VirtualRegister { .. })));
    }

    #[test]
    fn load_use_interlock_charged() {
        let cfg = LowEndConfig::default();
        // Load immediately used.
        let mut b = FunctionBuilder::new("main");
        b.push(Inst::MovImm { dst: phys(0), imm: 64 });
        b.push(Inst::Load {
            dst: phys(1),
            base: phys(0),
            offset: 0,
        });
        b.push(Inst::BinImm {
            op: BinOp::Add,
            dst: phys(2),
            src: phys(1),
            imm: 1,
        });
        b.ret(Some(phys(2)));
        let tight = simulate(&Program::single(b.finish()), &cfg, &[]).unwrap();

        // Same, but with a nop between load and use.
        let mut b = FunctionBuilder::new("main");
        b.push(Inst::MovImm { dst: phys(0), imm: 64 });
        b.push(Inst::Load {
            dst: phys(1),
            base: phys(0),
            offset: 0,
        });
        b.push(Inst::Nop);
        b.push(Inst::BinImm {
            op: BinOp::Add,
            dst: phys(2),
            src: phys(1),
            imm: 1,
        });
        b.ret(Some(phys(2)));
        let relaxed = simulate(&Program::single(b.finish()), &cfg, &[]).unwrap();
        // The nop costs 1 fetch cycle but saves the interlock bubble:
        // net equal cycles.
        assert_eq!(tight.cycles + 1, relaxed.cycles + cfg.load_use_penalty);
    }
}

#[cfg(test)]
mod profile_tests {
    use super::*;
    use dra_ir::{Cond, FunctionBuilder, PReg};

    fn phys(n: u8) -> Reg {
        Reg::Phys(PReg(n))
    }

    #[test]
    fn block_counts_record_loop_iterations() {
        let mut b = FunctionBuilder::new("main");
        b.push(Inst::MovImm { dst: phys(0), imm: 0 });
        b.push(Inst::MovImm { dst: phys(1), imm: 7 });
        let h = b.new_block();
        let body = b.new_block();
        let ex = b.new_block();
        b.br(h);
        b.switch_to(h);
        b.push(Inst::CondBr {
            cond: Cond::Lt,
            lhs: phys(0),
            rhs: phys(1),
            then_bb: body,
            else_bb: ex,
        });
        b.switch_to(body);
        b.push(Inst::BinImm {
            op: BinOp::Add,
            dst: phys(0),
            src: phys(0),
            imm: 1,
        });
        b.br(h);
        b.switch_to(ex);
        b.ret(None);
        let p = Program::single(b.finish());
        let r = simulate(&p, &LowEndConfig::default(), &[]).unwrap();
        assert_eq!(r.block_counts[&(0, h.0)], 8, "7 taken + 1 exit test");
        assert_eq!(r.block_counts[&(0, body.0)], 7);
        assert_eq!(r.block_counts[&(0, ex.0)], 1);
        assert_eq!(r.block_counts[&(0, 0)], 1, "entry executed once");
    }

    #[test]
    fn slr_pairs_share_fetch_cycles() {
        // With slr_per_cycle = 2, back-to-back set_last_regs cost one
        // cycle per pair.
        let build = |n: usize| {
            let mut b = FunctionBuilder::new("main");
            for _ in 0..n {
                b.push(Inst::SetLastReg {
                    class: dra_ir::RegClass::Int,
                    value: 0,
                    delay: 0,
                });
            }
            b.push(Inst::MovImm { dst: phys(0), imm: 1 });
            b.ret(Some(phys(0)));
            Program::single(b.finish())
        };
        let cfg = LowEndConfig::default();
        let none = simulate(&build(0), &cfg, &[]).unwrap();
        let four = simulate(&build(4), &cfg, &[]).unwrap();
        assert_eq!(
            four.cycles - none.cycles,
            2,
            "4 decode-removed instructions absorb into 2 cycles"
        );
        assert_eq!(four.set_last_regs, 4);
    }

    #[test]
    fn slr_full_cost_when_front_end_narrow() {
        let mut b = FunctionBuilder::new("main");
        for _ in 0..4 {
            b.push(Inst::SetLastReg {
                class: dra_ir::RegClass::Int,
                value: 0,
                delay: 0,
            });
        }
        b.push(Inst::MovImm { dst: phys(0), imm: 1 });
        b.ret(Some(phys(0)));
        let p = Program::single(b.finish());
        let narrow_cfg = LowEndConfig {
            slr_per_cycle: 1, // single-issue fetch: every slr stalls
            ..LowEndConfig::default()
        };
        let narrow = simulate(&p, &narrow_cfg, &[]).unwrap();
        let wide_cfg = LowEndConfig {
            slr_per_cycle: 2,
            ..LowEndConfig::default()
        };
        let wide = simulate(&p, &wide_cfg, &[]).unwrap();
        assert_eq!(narrow.cycles - wide.cycles, 2);
    }
}
