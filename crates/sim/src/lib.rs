//! # dra-sim — machine models for the paper's two evaluations
//!
//! * [`lowend`] + [`machine`] — the Section 10.1 configuration: an
//!   ARM/THUMB-like 5-stage in-order scalar pipeline with I- and D-caches,
//!   executing allocated LEAF16 programs functionally while accounting
//!   cycles. `set_last_reg` instructions occupy fetch/decode slots (and
//!   I-cache space) but never enter the execute stage, exactly as the
//!   paper specifies.
//! * [`vliw`] — the Section 10.2 configuration: a 4-issue VLIW with 2
//!   memory ports, 32 architected / 64 physical registers, whose loop
//!   timing comes from modulo-schedule parameters.
//! * [`cache`] — set-associative LRU caches shared by both.
//!
//! ```
//! use dra_ir::{FunctionBuilder, Inst, PReg, Program, Reg};
//! use dra_sim::{simulate, LowEndConfig};
//!
//! let mut b = FunctionBuilder::new("main");
//! b.push(Inst::MovImm { dst: Reg::Phys(PReg(0)), imm: 40 });
//! b.push(Inst::BinImm {
//!     op: dra_ir::BinOp::Add,
//!     dst: Reg::Phys(PReg(0)),
//!     src: Reg::Phys(PReg(0)),
//!     imm: 2,
//! });
//! b.ret(Some(Reg::Phys(PReg(0))));
//! let p = Program::single(b.finish());
//! let r = simulate(&p, &LowEndConfig::default(), &[])?;
//! assert_eq!(r.ret_value, Some(42));
//! # Ok::<(), dra_sim::SimError>(())
//! ```

pub mod cache;
pub mod lowend;
pub mod machine;
pub mod vliw;

pub use cache::{Cache, CacheConfig};
pub use lowend::LowEndConfig;
pub use machine::{simulate, SimError, SimResult};
pub use vliw::{loop_cycles, VliwConfig};
