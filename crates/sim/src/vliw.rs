//! The high-end VLIW machine model (Section 10.2).
//!
//! "A VLIW machine model with 32 architected registers and 64 physical
//! registers. There are 4 functional units, 2 memory ports." Loop timing
//! follows the modulo-scheduling model: a software-pipelined loop with
//! initiation interval `II` and `S` pipeline stages executes
//! `(iterations + S - 1) · II` cycles, plus fixed per-invocation overhead
//! for any `set_last_reg` instructions promoted ahead of the kernel
//! (Section 8.1 — they are hoisted out of the schedule, so they cost fetch
//! slots once per loop invocation, not per iteration).

/// Configuration of the VLIW machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VliwConfig {
    /// Total issue slots per cycle.
    pub issue_width: u32,
    /// Functional units able to execute ALU operations.
    pub n_alus: u32,
    /// Memory ports (loads/stores per cycle).
    pub n_mem_ports: u32,
    /// Architected registers visible through direct encoding.
    pub arch_regs: u16,
    /// Physical registers present in hardware.
    pub phys_regs: u16,
}

impl Default for VliwConfig {
    fn default() -> Self {
        VliwConfig {
            issue_width: 4,
            n_alus: 4,
            n_mem_ports: 2,
            arch_regs: 32,
            phys_regs: 64,
        }
    }
}

/// Cycles to run a modulo-scheduled loop.
///
/// * `ii` — initiation interval of the kernel.
/// * `stages` — number of pipeline stages (`ceil(schedule_len / ii)`).
/// * `iterations` — loop trip count.
/// * `pre_loop_insts` — instructions executed once before the kernel
///   (e.g. hoisted `set_last_reg`s), charged one issue slot each.
pub fn loop_cycles(cfg: &VliwConfig, ii: u32, stages: u32, iterations: u64, pre_loop_insts: u32) -> u64 {
    assert!(ii >= 1, "II must be positive");
    assert!(stages >= 1);
    let pre = pre_loop_insts.div_ceil(cfg.issue_width) as u64;
    pre + (iterations + stages as u64 - 1) * ii as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = VliwConfig::default();
        assert_eq!(c.n_alus, 4);
        assert_eq!(c.n_mem_ports, 2);
        assert_eq!(c.arch_regs, 32);
        assert_eq!(c.phys_regs, 64);
    }

    #[test]
    fn steady_state_dominated_by_ii() {
        let c = VliwConfig::default();
        let fast = loop_cycles(&c, 2, 3, 1000, 0);
        let slow = loop_cycles(&c, 4, 3, 1000, 0);
        assert_eq!(fast, 2 * 1002);
        assert_eq!(slow, 4 * 1002);
        assert!(slow > fast);
    }

    #[test]
    fn hoisted_set_last_regs_cost_once() {
        let c = VliwConfig::default();
        let with = loop_cycles(&c, 2, 2, 1_000_000, 8);
        let without = loop_cycles(&c, 2, 2, 1_000_000, 0);
        assert_eq!(with - without, 2, "8 pre-insts / 4-wide issue");
    }

    #[test]
    #[should_panic(expected = "II must be positive")]
    fn zero_ii_rejected() {
        loop_cycles(&VliwConfig::default(), 0, 1, 1, 0);
    }
}
