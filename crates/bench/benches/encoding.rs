//! Criterion benchmarks of the encoding layer: repair-pass throughput and
//! encode/decode speed — the software analogue of the decoder the paper
//! argues is cheap in hardware (Section 2.1).

use criterion::{criterion_group, criterion_main, Criterion};
use dra_adjgraph::DiffParams;
use dra_core::lowend::{compile_benchmark, Approach, LowEndSetup};
use dra_encoding::{encode_fields, insert_set_last_reg_program, EncodingConfig};
use std::hint::black_box;

fn bench_encoding(c: &mut Criterion) {
    let setup = LowEndSetup::default();
    // A program allocated with 12 registers, not yet repaired.
    let (allocated, _, _) = compile_benchmark("bitcount", Approach::Remapping, &setup).unwrap();
    let cfg = EncodingConfig::new(DiffParams::new(12, 8));

    c.bench_function("repair-pass/bitcount", |b| {
        b.iter(|| {
            let mut p = allocated.clone();
            insert_set_last_reg_program(&mut p, &cfg);
            black_box(p);
        })
    });

    c.bench_function("encode-fields/bitcount", |b| {
        b.iter(|| {
            for f in &allocated.funcs {
                black_box(encode_fields(f, &cfg).unwrap());
            }
        })
    });

    c.bench_function("modulo-encode/1k-pairs", |b| {
        let params = DiffParams::new(64, 32);
        b.iter(|| {
            let mut acc = 0u32;
            for prev in 0..32u8 {
                for cur in 0..32u8 {
                    acc = acc.wrapping_add(params.encode(prev, cur) as u32);
                }
            }
            black_box(acc);
        })
    });
}

criterion_group!(benches, bench_encoding);
criterion_main!(benches);
