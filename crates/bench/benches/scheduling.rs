//! Criterion benchmarks of the modulo scheduler and the full pipelining
//! flow (Table 2's per-loop compile path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dra_sim::VliwConfig;
use dra_swp::{modulo_schedule, pipeline_loop, LoopDdg, PipelineConfig};
use dra_workloads::{generate_loop_suite, LoopSuiteConfig};
use std::hint::black_box;

fn bench_scheduling(c: &mut Criterion) {
    let suite = generate_loop_suite(&LoopSuiteConfig {
        n_loops: 40,
        hungry_fraction: 0.11,
        seed: 17,
    });
    let common: &LoopDdg = &suite.iter().find(|l| !l.hungry).unwrap().ddg;
    let hungry: &LoopDdg = &suite.iter().find(|l| l.hungry).unwrap().ddg;
    let machine = VliwConfig::default();

    let mut group = c.benchmark_group("modulo-schedule");
    group.sample_size(20);
    group.bench_with_input(BenchmarkId::from_parameter("common"), common, |b, d| {
        b.iter(|| black_box(modulo_schedule(d, &machine, 512).unwrap()))
    });
    group.bench_with_input(BenchmarkId::from_parameter("hungry"), hungry, |b, d| {
        b.iter(|| black_box(modulo_schedule(d, &machine, 512).unwrap()))
    });
    group.finish();

    let mut group = c.benchmark_group("pipeline-loop");
    group.sample_size(10);
    for reg_n in [32u16, 64] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("hungry-regn{reg_n}")),
            hungry,
            |b, d| {
                b.iter(|| black_box(pipeline_loop(d, &PipelineConfig::highend(reg_n)).unwrap()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scheduling);
criterion_main!(benches);
