//! Color-stage cost: the set-based IRC engine (`irc::reference`) vs the
//! dense indexed engine, across workload sizes.
//!
//! PR 2 made graph *construction* fast; `AllocStats::color_nanos` (the
//! simplify/coalesce/freeze/select worklist loop plus the rewrite) then
//! dominated allocation time. The dense engine replaces the `BTreeSet`
//! worklists, `HashSet` membership tests, per-node move sets, and
//! chain-walk aliasing with per-node state arrays, bitset worklists, CSR
//! move lists, and path-compressed union-find — with bit-identical
//! output, which this benchmark re-asserts on every workload before
//! timing anything.
//!
//! Two variants per size:
//!
//! * `reference-color/S` — full `irc::reference::irc_allocate`.
//! * `dense-color/S` — full `irc_allocate` on the dense engine.
//!
//! After the criterion sweep (skipped under `--test`), a headline summary
//! compares the *color-stage* time (`color_nanos`, minimum over ~0.4 s of
//! runs) on every size, prints the largest-workload speedup (acceptance
//! bar: 2x), and writes `results/irc_color.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dra_ir::{Function, PReg};
use dra_regalloc::irc::reference;
use dra_regalloc::{irc_allocate, AllocConfig, SelectStrategy};
use dra_workloads::mibench::{generate, BenchSpec};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Call-clobbered registers, matching `LowEndSetup::default`.
const CLOBBERS: [PReg; 2] = [PReg(0), PReg(1)];

/// A synthetic workload of roughly increasing interference-graph size
/// (same shapes as `irc_build.rs` so the results files line up).
fn spec(name: &'static str, pressure: usize, block_len: usize, loops: usize) -> BenchSpec {
    BenchSpec {
        name,
        seed: 0x1e6_b111d,
        funcs: 1,
        pressure,
        block_len,
        loops_per_func: loops,
        max_depth: 2,
        mem_ratio: 0.15,
        call_ratio: 0.0,
        branch_ratio: 0.4,
        trip_range: (4, 16),
        muldiv_ratio: 0.2,
    }
}

fn sizes() -> Vec<BenchSpec> {
    vec![
        spec("small", 8, 24, 2),
        spec("medium", 16, 48, 4),
        spec("large", 32, 96, 8),
        spec("huge", 96, 256, 16),
    ]
}

/// The workload's single largest function.
fn workload(s: &BenchSpec) -> Function {
    generate(s)
        .funcs
        .into_iter()
        .max_by_key(|f| f.count_insts(|_| true))
        .expect("workload has a function")
}

/// The allocator configuration under test (baseline select; the
/// differential path is timed separately in the headline).
fn cfg() -> AllocConfig {
    let mut cfg = AllocConfig::baseline(12);
    cfg.call_clobbers = CLOBBERS.to_vec();
    cfg
}

fn bench_irc_color(c: &mut Criterion) {
    // Equivalence gate: both engines must produce bit-identical programs
    // and work counters on every benchmark workload, under both the
    // baseline and the differential strategy. Runs before the `--test`
    // early-return so the CI smoke re-proves it on every tier-1 run.
    for s in sizes() {
        let f = workload(&s);
        for strategy in [SelectStrategy::Lowest, SelectStrategy::Differential] {
            let mut acfg = cfg();
            acfg.strategy = strategy;
            if strategy == SelectStrategy::Differential {
                acfg.params = dra_adjgraph::DiffParams::new(12, 8);
            }
            let mut fd = f.clone();
            let mut fr = f.clone();
            let sd = irc_allocate(&mut fd, &acfg).expect("dense allocates");
            let sr = reference::irc_allocate(&mut fr, &acfg).expect("reference allocates");
            assert_eq!(fd, fr, "engines diverge on {} ({:?})", s.name, strategy);
            assert_eq!(
                (sd.rounds, sd.spilled_vregs, sd.moves_coalesced,
                 sd.simplify_steps, sd.coalesce_steps, sd.freeze_steps, sd.spill_selects),
                (sr.rounds, sr.spilled_vregs, sr.moves_coalesced,
                 sr.simplify_steps, sr.coalesce_steps, sr.freeze_steps, sr.spill_selects),
                "work counters diverge on {} ({:?})", s.name, strategy
            );
        }
    }

    let mut group = c.benchmark_group("irc_color");
    group.sample_size(10);
    for s in sizes() {
        let f = workload(&s);
        group.bench_with_input(BenchmarkId::new("reference-color", s.name), &f, |b, f| {
            b.iter(|| {
                let mut f = f.clone();
                black_box(reference::irc_allocate(&mut f, &cfg())).expect("allocates")
            })
        });
        group.bench_with_input(BenchmarkId::new("dense-color", s.name), &f, |b, f| {
            b.iter(|| {
                let mut f = f.clone();
                black_box(irc_allocate(&mut f, &cfg())).expect("allocates")
            })
        });
    }
    group.finish();

    // Headline comparison + results/irc_color.json; skipped under
    // `--test` (CI smoke).
    if std::env::args().any(|a| a == "--test") {
        return;
    }

    /// Minimum `color_nanos` over ~0.4 s of full allocations. The minimum
    /// is the noise-robust statistic: preemption and frequency scaling
    /// only ever add time.
    fn min_color_nanos(f: &Function, acfg: &AllocConfig, run_ref: bool) -> (u64, u64) {
        let run = |f2: &mut Function| {
            if run_ref {
                reference::irc_allocate(f2, acfg).expect("allocates")
            } else {
                irc_allocate(f2, acfg).expect("allocates")
            }
        };
        let mut best_color = u64::MAX;
        let mut best_total = u64::MAX;
        let mut iters = 0u32;
        let t0 = Instant::now();
        while t0.elapsed() < Duration::from_millis(400) || iters < 10 {
            let mut f2 = f.clone();
            let t = Instant::now();
            let stats = run(&mut f2);
            let total = t.elapsed().as_nanos() as u64;
            best_color = best_color.min(stats.color_nanos);
            best_total = best_total.min(total);
            iters += 1;
        }
        (best_color, best_total)
    }

    let mut json_sizes = Vec::new();
    let mut headline: Option<f64> = None;
    eprintln!("\nirc_color headline (min color-stage nanos per allocation):");
    for s in sizes() {
        let f = workload(&s);
        let (ref_color, ref_total) = min_color_nanos(&f, &cfg(), true);
        let (dense_color, dense_total) = min_color_nanos(&f, &cfg(), false);
        let speedup = ref_color as f64 / dense_color.max(1) as f64;
        eprintln!(
            "  {:<7} {:>5} vregs  reference {:>11} ns  dense {:>11} ns  color speedup {:.1}x  (total {:.1}x)",
            s.name,
            f.vreg_count,
            ref_color,
            dense_color,
            speedup,
            ref_total as f64 / dense_total.max(1) as f64,
        );
        json_sizes.push(format!(
            concat!(
                "    {{\"size\": \"{}\", \"vregs\": {}, ",
                "\"reference_color_nanos\": {}, \"dense_color_nanos\": {}, ",
                "\"reference_total_nanos\": {}, \"dense_total_nanos\": {}, ",
                "\"color_speedup\": {:.3}}}"
            ),
            s.name,
            f.vreg_count,
            ref_color,
            dense_color,
            ref_total,
            dense_total,
            speedup
        ));
        headline = Some(speedup);
    }
    let largest = headline.expect("at least one size");
    eprintln!("  largest-workload color-stage speedup: {largest:.1}x (acceptance bar: 2x)");

    // The differential-select path additionally exercises the indexed
    // refine_colors pass; report it on the largest workload.
    let f = workload(sizes().last().expect("nonempty"));
    let mut dcfg = cfg();
    dcfg.strategy = SelectStrategy::Differential;
    dcfg.params = dra_adjgraph::DiffParams::new(12, 8);
    let (dref, _) = min_color_nanos(&f, &dcfg, true);
    let (ddense, _) = min_color_nanos(&f, &dcfg, false);
    let diff_speedup = dref as f64 / ddense.max(1) as f64;
    eprintln!("  differential-select color speedup on huge: {diff_speedup:.1}x");

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"irc_color\",").unwrap();
    writeln!(json, "  \"largest_color_speedup\": {largest:.3},").unwrap();
    writeln!(json, "  \"differential_color_speedup\": {diff_speedup:.3},").unwrap();
    writeln!(json, "  \"sizes\": [").unwrap();
    writeln!(json, "{}", json_sizes.join(",\n")).unwrap();
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
    // Benches run with the package directory as cwd; anchor the output
    // at the workspace root next to the other results files.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/irc_color.json");
    match std::fs::write(out, &json) {
        Ok(()) => eprintln!("wrote results/irc_color.json"),
        Err(e) => eprintln!("could not write results/irc_color.json: {e}"),
    }
}

criterion_group!(benches, bench_irc_color);
criterion_main!(benches);
