//! Ablation D2 (DESIGN.md): the differential remapping search compared
//! across strategies — the greedy multi-start descent at several restart
//! counts, and greedy-1000 vs the portfolio (greedy + simulated annealing
//! + LNS cycle moves) at the *same* evaluation budget, measuring both the
//! wall-time and the solution quality on the same allocated function.
//!
//! Besides the criterion groups, a headline section (skipped under
//! `--test`) writes `results/remap_ablation.json` with min wall-clock and
//! final adjacency cost for each configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dra_adjgraph::DiffParams;
use dra_core::lowend::{compile_benchmark, Approach, LowEndSetup};
use dra_regalloc::{remap_function, RemapConfig, RemapStrategy};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Equal-budget comparison point: roughly 1/8 of what greedy-1000
/// naturally spends on this function, so the fixed restart count starves
/// while the budget-aware portfolio still completes its racers (the same
/// regime as the fig13 sweep).
const EVAL_BUDGET: u64 = 50_000;

fn budget_cfg(strategy: RemapStrategy) -> RemapConfig {
    let mut cfg = RemapConfig::new(DiffParams::new(12, 8));
    cfg.exhaustive_limit = 0; // always search
    cfg.starts = 1000;
    cfg.strategy = strategy;
    cfg.eval_budget = EVAL_BUDGET;
    cfg
}

fn bench_remap(c: &mut Criterion) {
    // A program allocated with 12 registers via the plain allocator; the
    // remap pass is then applied with different search settings.
    let setup = LowEndSetup::default();
    let (prog, _, _) = compile_benchmark("bitcount", Approach::Remapping, &setup).unwrap();
    let func = prog.funcs[0].clone();

    let mut group = c.benchmark_group("remap-search");
    group.sample_size(10);
    // Greedy restarts sweep (the paper uses 1000 starts).
    for starts in [8u32, 64, 256, 1000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("greedy-{starts}")),
            &func,
            |b, f| {
                b.iter(|| {
                    let mut f = f.clone();
                    let mut cfg = RemapConfig::new(DiffParams::new(12, 8));
                    cfg.exhaustive_limit = 0; // force greedy
                    cfg.starts = starts;
                    black_box(remap_function(&mut f, &cfg));
                })
            },
        );
    }
    // Greedy-1000 vs the portfolio under one equal evaluation budget.
    for strategy in [RemapStrategy::Greedy, RemapStrategy::Portfolio] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("budget50k-{}", strategy.label())),
            &func,
            |b, f| {
                b.iter(|| {
                    let mut f = f.clone();
                    black_box(remap_function(&mut f, &budget_cfg(strategy)));
                })
            },
        );
    }
    group.finish();

    // Headline comparison + results/remap_ablation.json; skipped under
    // `--test` (CI smoke).
    if std::env::args().any(|a| a == "--test") {
        return;
    }

    /// Minimum wall-clock of `f` over ~0.4 s of iterations (the minimum is
    /// the noise-robust statistic: preemption only ever adds time).
    fn time(mut f: impl FnMut()) -> Duration {
        f(); // warm up
        let mut best = Duration::MAX;
        let mut iters = 0u32;
        let t0 = Instant::now();
        while t0.elapsed() < Duration::from_millis(400) || iters < 10 {
            let t = Instant::now();
            f();
            best = best.min(t.elapsed());
            iters += 1;
        }
        best
    }

    let mut json_entries = Vec::new();
    eprintln!("\nremap_ablation headline (bitcount fn 0, adjacency cost / min wall):");
    let mut report = |label: &str, cfg: &RemapConfig| {
        let mut f = func.clone();
        let stats = remap_function(&mut f, cfg);
        let wall = time(|| {
            let mut f = func.clone();
            black_box(remap_function(&mut f, cfg));
        });
        eprintln!(
            "  {label:<22} cost {:>8.1}  evals {:>8}  starts {:>5}  min wall {wall:>10.2?}",
            stats.cost_after, stats.evaluations, stats.starts_run
        );
        json_entries.push(format!(
            concat!(
                "    {{\"config\": \"{}\", \"cost_after\": {:.6}, ",
                "\"evaluations\": {}, \"starts_run\": {}, \"cycle_moves\": {}, ",
                "\"winner\": \"{}\", \"min_wall_nanos\": {}}}"
            ),
            label,
            stats.cost_after,
            stats.evaluations,
            stats.starts_run,
            stats.cycle_moves,
            stats.winner.label(),
            wall.as_nanos()
        ));
        (stats.cost_after, wall)
    };

    for starts in [8u32, 64, 256, 1000] {
        let mut cfg = RemapConfig::new(DiffParams::new(12, 8));
        cfg.exhaustive_limit = 0;
        cfg.starts = starts;
        report(&format!("greedy-{starts}"), &cfg);
    }
    let (g_cost, g_wall) = report("budget50k-greedy", &budget_cfg(RemapStrategy::Greedy));
    let (p_cost, p_wall) = report("budget50k-portfolio", &budget_cfg(RemapStrategy::Portfolio));
    eprintln!(
        "  equal-budget verdict: portfolio cost {p_cost:.1} vs greedy {g_cost:.1}, \
         wall {p_wall:.2?} vs {g_wall:.2?}"
    );

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"remap_ablation\",").unwrap();
    writeln!(json, "  \"eval_budget\": {EVAL_BUDGET},").unwrap();
    writeln!(
        json,
        "  \"portfolio_cost\": {p_cost:.6}, \"greedy_cost\": {g_cost:.6},"
    )
    .unwrap();
    writeln!(json, "  \"configs\": [").unwrap();
    writeln!(json, "{}", json_entries.join(",\n")).unwrap();
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
    // Benches run with the package directory as cwd; anchor the output at
    // the workspace root next to the other results files.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/remap_ablation.json");
    match std::fs::write(out, &json) {
        Ok(()) => eprintln!("wrote results/remap_ablation.json"),
        Err(e) => eprintln!("could not write results/remap_ablation.json: {e}"),
    }
}

criterion_group!(benches, bench_remap);
criterion_main!(benches);
