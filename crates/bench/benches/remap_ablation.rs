//! Ablation D2 (DESIGN.md): differential remapping's exhaustive search vs
//! the greedy multi-start descent — runtime and solution quality on the
//! same allocated programs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dra_adjgraph::DiffParams;
use dra_core::lowend::{compile_benchmark, Approach, LowEndSetup};
use dra_regalloc::{remap_function, RemapConfig};
use std::hint::black_box;

fn bench_remap(c: &mut Criterion) {
    // A program allocated with 12 registers via the plain allocator; the
    // remap pass is then applied with different search settings.
    let setup = LowEndSetup::default();
    let (prog, _, _) = compile_benchmark("bitcount", Approach::Remapping, &setup).unwrap();
    let func = prog.funcs[0].clone();

    let mut group = c.benchmark_group("remap-search");
    group.sample_size(10);
    // Greedy restarts sweep (the paper uses 1000 starts).
    for starts in [8u32, 64, 256, 1000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("greedy-{starts}")),
            &func,
            |b, f| {
                b.iter(|| {
                    let mut f = f.clone();
                    let mut cfg = RemapConfig::new(DiffParams::new(12, 8));
                    cfg.exhaustive_limit = 0; // force greedy
                    cfg.starts = starts;
                    black_box(remap_function(&mut f, &cfg));
                })
            },
        );
    }
    group.finish();

    // Quality report printed once (criterion benches may print).
    let quality = |starts: u32| {
        let mut f = func.clone();
        let mut cfg = RemapConfig::new(DiffParams::new(12, 8));
        cfg.exhaustive_limit = 0;
        cfg.starts = starts;
        remap_function(&mut f, &cfg).cost_after
    };
    eprintln!(
        "remap quality (adjacency cost): 8 starts = {}, 64 = {}, 1000 = {}",
        quality(8),
        quality(64),
        quality(1000)
    );
}

criterion_group!(benches, bench_remap);
criterion_main!(benches);
