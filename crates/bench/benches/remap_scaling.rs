//! Remapping-search scaling: the seed's full-rescoring greedy descent vs
//! the incremental delta-cost search, across register-file sizes.
//!
//! Three variants per `RegN`:
//!
//! * `full-rescore/N` — the historical algorithm: every candidate swap
//!   re-scored with a full `O(E)` `assignment_cost` walk (32 starts).
//! * `incremental/N` — `swap_delta`-scored descent, one thread, 32 starts.
//! * `paper-1000/N` — the production configuration: incremental scoring,
//!   the paper's 1000 restarts, one worker thread per CPU.
//!
//! After the criterion sweep (skipped under `--test`), a headline summary
//! compares wall-clock at `RegN = 32` with 1000 starts — the acceptance
//! configuration — and prints the measured speedups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dra_adjgraph::{build_preg_adjacency, AdjacencyGraph, DiffParams};
use dra_core::lowend::{compile_benchmark, Approach, LowEndSetup};
use dra_ir::{Function, RegClass};
use dra_regalloc::{remap_function, RemapConfig};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// The seed implementation this repository replaced: greedy pairwise-swap
/// descent scoring every candidate with a full `O(E)` cost evaluation.
/// Kept here (only here) as the reference the speedup is measured against.
fn full_rescore_greedy(g: &AdjacencyGraph, params: DiffParams, starts: u32, seed: u64) -> f64 {
    let reg_n = params.reg_n() as usize;
    let perm_cost =
        |rv: &[u8]| g.assignment_cost(|n| Some(rv[n as usize]), params);
    let mut rng = SmallRng::seed_from_u64(seed);
    let identity: Vec<u8> = (0..reg_n as u8).collect();
    let mut best_cost = perm_cost(&identity);
    for start in 0..starts {
        let mut rv = identity.clone();
        if start > 0 {
            rv.shuffle(&mut rng);
        }
        let mut cost = perm_cost(&rv);
        loop {
            let mut best_swap: Option<(usize, usize, f64)> = None;
            for a in 0..reg_n {
                for b in a + 1..reg_n {
                    rv.swap(a, b);
                    let c = perm_cost(&rv);
                    rv.swap(a, b);
                    if c < cost && best_swap.is_none_or(|(_, _, bc)| c < bc) {
                        best_swap = Some((a, b, c));
                    }
                }
            }
            match best_swap {
                Some((a, b, c)) => {
                    rv.swap(a, b);
                    cost = c;
                }
                None => break,
            }
        }
        if cost < best_cost {
            best_cost = cost;
        }
        if best_cost == 0.0 {
            break;
        }
    }
    best_cost
}

/// The hottest `sha` function, baseline-allocated with `reg_n` registers
/// (no remapping applied — the search input, not its output).
fn allocated_function(reg_n: u16) -> Function {
    let mut setup = LowEndSetup::default();
    setup.direct_regs = reg_n;
    let (prog, _, _) = compile_benchmark("sha", Approach::Baseline, &setup)
        .expect("sha allocates under baseline");
    prog.funcs
        .into_iter()
        .max_by_key(|f| f.count_insts(|_| true))
        .expect("sha has functions")
}

fn bench_remap_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("remap_scaling");
    group.sample_size(10);
    for reg_n in [8u16, 16, 24, 32] {
        let params = DiffParams::new(reg_n, 8);
        let f = allocated_function(reg_n);
        let g = build_preg_adjacency(&f, RegClass::Int, reg_n);

        group.bench_with_input(BenchmarkId::new("full-rescore", reg_n), &g, |b, g| {
            b.iter(|| black_box(full_rescore_greedy(g, params, 32, 0x5eed)))
        });
        group.bench_with_input(BenchmarkId::new("incremental", reg_n), &f, |b, f| {
            b.iter(|| {
                let mut f = f.clone();
                let mut cfg = RemapConfig::new(params);
                cfg.exhaustive_limit = 0;
                cfg.starts = 32;
                cfg.threads = 1;
                black_box(remap_function(&mut f, &cfg))
            })
        });
        group.bench_with_input(BenchmarkId::new("paper-1000", reg_n), &f, |b, f| {
            b.iter(|| {
                let mut f = f.clone();
                let mut cfg = RemapConfig::new(params); // 1000 starts, all CPUs
                cfg.exhaustive_limit = 0;
                black_box(remap_function(&mut f, &cfg))
            })
        });
    }
    group.finish();

    // Headline wall-clock comparison at the acceptance configuration:
    // RegN = 32, the paper's 1000 restarts. One measured run each is
    // plenty at these durations; skipped under `--test` (CI smoke).
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let reg_n = 32u16;
    let params = DiffParams::new(reg_n, 8);
    let f = allocated_function(reg_n);
    let g = build_preg_adjacency(&f, RegClass::Int, reg_n);

    let t0 = Instant::now();
    let full_cost = full_rescore_greedy(&g, params, 1000, 0x5eed);
    let full = t0.elapsed();

    let run_incremental = |threads: usize| {
        let mut f2 = f.clone();
        let mut cfg = RemapConfig::new(params);
        cfg.exhaustive_limit = 0;
        cfg.threads = threads;
        let t = Instant::now();
        let stats = remap_function(&mut f2, &cfg);
        (t.elapsed(), stats)
    };
    let (inc, one) = run_incremental(1);
    let (par, all) = run_incremental(0);

    eprintln!("\nremap_scaling headline (RegN=32, 1000 starts, sha hottest fn):");
    eprintln!("  full re-scoring (seed algorithm): {full:?}  cost {full_cost}");
    eprintln!(
        "  incremental, 1 thread:            {inc:?}  cost {}  {} evals  speedup {:.1}x",
        one.cost_after,
        one.evaluations,
        full.as_secs_f64() / inc.as_secs_f64()
    );
    eprintln!(
        "  incremental, all CPUs:            {par:?}  cost {}  {} starts  speedup {:.1}x",
        all.cost_after,
        all.starts_run,
        full.as_secs_f64() / par.as_secs_f64()
    );
}

criterion_group!(benches, bench_remap_scaling);
criterion_main!(benches);
