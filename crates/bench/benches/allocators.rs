//! Criterion benchmarks of the allocators themselves (compile-time cost,
//! the quantity Section 10's "very small compilation time" claim covers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dra_adjgraph::DiffParams;
use dra_regalloc::{
    coalesce_allocate, irc_allocate, ospill_allocate, AllocConfig, CoalesceConfig, OspillConfig,
};
use dra_workloads::benchmark;
use std::hint::black_box;

fn bench_allocators(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocators");
    group.sample_size(10);
    for name in ["crc32", "bitcount", "sha"] {
        let prog = benchmark(name);
        group.bench_with_input(BenchmarkId::new("baseline-irc", name), &prog, |b, p| {
            b.iter(|| {
                let mut f = p.funcs[0].clone();
                irc_allocate(&mut f, &AllocConfig::baseline(8)).unwrap();
                black_box(f);
            })
        });
        group.bench_with_input(
            BenchmarkId::new("differential-select", name),
            &prog,
            |b, p| {
                b.iter(|| {
                    let mut f = p.funcs[0].clone();
                    irc_allocate(&mut f, &AllocConfig::differential(DiffParams::new(12, 8)))
                        .unwrap();
                    black_box(f);
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("o-spill", name), &prog, |b, p| {
            b.iter(|| {
                let mut f = p.funcs[0].clone();
                ospill_allocate(&mut f, &OspillConfig::new(8)).unwrap();
                black_box(f);
            })
        });
        group.bench_with_input(
            BenchmarkId::new("differential-coalesce", name),
            &prog,
            |b, p| {
                b.iter(|| {
                    let mut f = p.funcs[0].clone();
                    coalesce_allocate(&mut f, &CoalesceConfig::new(DiffParams::new(12, 8)))
                        .unwrap();
                    black_box(f);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_allocators);
criterion_main!(benches);
