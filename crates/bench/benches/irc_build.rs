//! Interference-graph construction and coloring: the seed's
//! `HashSet`-of-pairs representation vs the triangular bit-matrix +
//! adjacency-list hybrid, across workload sizes.
//!
//! Three variants per size:
//!
//! * `hashset-build/S` — the historical algorithm
//!   (`interference::reference::build`): per-node `HashSet<u32>`
//!   adjacency sized to `vreg_count + MAX_PREGS`.
//! * `bitmatrix-build/S` — `InterferenceGraph::build`: O(1) membership
//!   bit-matrix plus compact `Vec<u32>` adjacency, sized to the live
//!   entity count.
//! * `build+color/S` — the full allocation (`irc_allocate`) on the new
//!   representation: graph build, worklist coloring, coalescing.
//!
//! After the criterion sweep (skipped under `--test`), a headline summary
//! times both builds on the largest workload, prints the speedup (the
//! acceptance bar is 3x), and writes `results/irc_build.json` with the
//! per-size timings so tooling can track them alongside
//! `results/fig13.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dra_ir::{Function, Liveness, PReg, RegClass};
use dra_regalloc::interference::{reference, InterferenceGraph};
use dra_regalloc::{irc_allocate, AllocConfig};
use dra_workloads::mibench::{generate, BenchSpec};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Call-clobbered registers, matching `LowEndSetup::default`.
const CLOBBERS: [PReg; 2] = [PReg(0), PReg(1)];

/// A synthetic workload of roughly increasing interference-graph size.
fn spec(name: &'static str, pressure: usize, block_len: usize, loops: usize) -> BenchSpec {
    BenchSpec {
        name,
        seed: 0x1e6_b111d,
        funcs: 1,
        pressure,
        block_len,
        loops_per_func: loops,
        max_depth: 2,
        mem_ratio: 0.15,
        call_ratio: 0.0,
        branch_ratio: 0.4,
        trip_range: (4, 16),
        muldiv_ratio: 0.2,
    }
}

fn sizes() -> Vec<BenchSpec> {
    vec![
        spec("small", 8, 24, 2),
        spec("medium", 16, 48, 4),
        spec("large", 32, 96, 8),
        spec("huge", 96, 256, 16),
    ]
}

/// The workload's single function plus its liveness solution.
fn workload(s: &BenchSpec) -> (Function, Liveness) {
    let p = generate(s);
    let f = p
        .funcs
        .into_iter()
        .max_by_key(|f| f.count_insts(|_| true))
        .expect("workload has a function");
    let l = Liveness::compute(&f);
    (f, l)
}

fn bench_irc_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("irc_build");
    group.sample_size(10);
    for s in sizes() {
        let (f, l) = workload(&s);
        group.bench_with_input(BenchmarkId::new("hashset-build", s.name), &f, |b, f| {
            b.iter(|| black_box(reference::build(f, &l, RegClass::Int, &CLOBBERS)))
        });
        group.bench_with_input(BenchmarkId::new("bitmatrix-build", s.name), &f, |b, f| {
            b.iter(|| black_box(InterferenceGraph::build(f, &l, RegClass::Int, &CLOBBERS)))
        });
        group.bench_with_input(BenchmarkId::new("build+color", s.name), &f, |b, f| {
            b.iter(|| {
                let mut f = f.clone();
                let mut cfg = AllocConfig::baseline(12);
                cfg.call_clobbers = CLOBBERS.to_vec();
                black_box(irc_allocate(&mut f, &cfg)).expect("allocates")
            })
        });
    }
    group.finish();

    // Headline comparison + results/irc_build.json; skipped under
    // `--test` (CI smoke).
    if std::env::args().any(|a| a == "--test") {
        return;
    }

    /// Minimum wall-clock of `f` over ~0.4 s of iterations. The minimum
    /// is the noise-robust statistic here: scheduler preemption and
    /// frequency scaling only ever add time, so the fastest observed run
    /// is the closest to the code's actual cost.
    fn time(mut f: impl FnMut()) -> Duration {
        // Warm up caches and the allocator.
        f();
        let mut best = Duration::MAX;
        let mut iters = 0u32;
        let t0 = Instant::now();
        while t0.elapsed() < Duration::from_millis(400) || iters < 10 {
            let t = Instant::now();
            f();
            best = best.min(t.elapsed());
            iters += 1;
        }
        best
    }

    let mut json_sizes = Vec::new();
    let mut headline: Option<(f64, f64)> = None;
    eprintln!("\nirc_build headline (min per build):");
    for s in sizes() {
        let (f, l) = workload(&s);
        let hashset = time(|| {
            black_box(reference::build(&f, &l, RegClass::Int, &CLOBBERS));
        });
        let bitmatrix = time(|| {
            black_box(InterferenceGraph::build(&f, &l, RegClass::Int, &CLOBBERS));
        });
        let color = time(|| {
            let mut f2 = f.clone();
            let mut cfg = AllocConfig::baseline(12);
            cfg.call_clobbers = CLOBBERS.to_vec();
            irc_allocate(&mut f2, &cfg).expect("allocates");
        });
        let g = InterferenceGraph::build(&f, &l, RegClass::Int, &CLOBBERS);
        let speedup = hashset.as_secs_f64() / bitmatrix.as_secs_f64();
        eprintln!(
            "  {:<7} {:>5} nodes  hashset {:>10.2?}  bitmatrix {:>10.2?}  speedup {:.1}x  build+color {:.2?}",
            s.name,
            g.num_nodes(),
            hashset,
            bitmatrix,
            speedup,
            color,
        );
        json_sizes.push(format!(
            concat!(
                "    {{\"size\": \"{}\", \"nodes\": {}, \"vregs\": {}, ",
                "\"hashset_build_nanos\": {}, \"bitmatrix_build_nanos\": {}, ",
                "\"build_color_nanos\": {}, \"speedup\": {:.3}}}"
            ),
            s.name,
            g.num_nodes(),
            f.vreg_count,
            hashset.as_nanos(),
            bitmatrix.as_nanos(),
            color.as_nanos(),
            speedup
        ));
        headline = Some((hashset.as_secs_f64(), bitmatrix.as_secs_f64()));
    }
    let (h, b) = headline.expect("at least one size");
    eprintln!(
        "  largest-workload speedup: {:.1}x (acceptance bar: 3x)",
        h / b
    );

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"irc_build\",").unwrap();
    writeln!(json, "  \"largest_speedup\": {:.3},", h / b).unwrap();
    writeln!(json, "  \"sizes\": [").unwrap();
    writeln!(json, "{}", json_sizes.join(",\n")).unwrap();
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
    // Benches run with the package directory as cwd; anchor the output
    // at the workspace root next to the other results files.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/irc_build.json");
    match std::fs::write(out, &json) {
        Ok(()) => eprintln!("wrote results/irc_build.json"),
        Err(e) => eprintln!("could not write results/irc_build.json: {e}"),
    }
}

criterion_group!(benches, bench_irc_build);
criterion_main!(benches);
