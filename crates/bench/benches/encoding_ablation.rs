//! Ablations D1 (repair placement), D3 (coalesce evaluation depth), and
//! D5 (access order) from DESIGN.md §6: runtime via Criterion, solution
//! quality printed once per configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dra_adjgraph::DiffParams;
use dra_encoding::{insert_set_last_reg_program, EncodingConfig, RepairPlacement};
use dra_ir::AccessOrder;
use dra_regalloc::{
    coalesce_allocate, irc_allocate_program, AllocConfig, CoalesceConfig, CoalesceEval,
};
use dra_workloads::benchmark;
use std::hint::black_box;

fn allocated(name: &str) -> dra_ir::Program {
    let mut p = benchmark(name);
    let mut cfg = AllocConfig::baseline(12);
    cfg.call_clobbers = vec![dra_ir::PReg(0), dra_ir::PReg(1)];
    irc_allocate_program(&mut p, &cfg).unwrap();
    p
}

fn bench_ablations(c: &mut Criterion) {
    let params = DiffParams::new(12, 8);
    let progs: Vec<(&str, dra_ir::Program)> = ["bitcount", "qsort", "sha"]
        .iter()
        .map(|&n| (n, allocated(n)))
        .collect();

    // --- D1: repair placement -----------------------------------------
    let mut group = c.benchmark_group("d1-repair-placement");
    for placement in [RepairPlacement::AtJoinEntry, RepairPlacement::AtPredecessors] {
        let total: usize = progs
            .iter()
            .map(|(_, p)| {
                let mut p = p.clone();
                let cfg = EncodingConfig::new(params).with_placement(placement);
                insert_set_last_reg_program(&mut p, &cfg).inserted
            })
            .sum();
        eprintln!("D1 {placement:?}: {total} static set_last_regs over 3 benchmarks");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{placement:?}")),
            &placement,
            |b, &pl| {
                b.iter(|| {
                    for (_, p) in &progs {
                        let mut p = p.clone();
                        let cfg = EncodingConfig::new(params).with_placement(pl);
                        black_box(insert_set_last_reg_program(&mut p, &cfg));
                    }
                })
            },
        );
    }
    group.finish();

    // --- D5: access order ----------------------------------------------
    for order in [AccessOrder::SrcsThenDst, AccessOrder::DstThenSrcs] {
        let total: usize = progs
            .iter()
            .map(|(_, p)| {
                let mut p = p.clone();
                let cfg = EncodingConfig::new(params).with_order(order);
                insert_set_last_reg_program(&mut p, &cfg).inserted
            })
            .sum();
        eprintln!("D5 {order:?}: {total} static set_last_regs over 3 benchmarks");
    }

    // --- D3: coalesce evaluation depth ----------------------------------
    let mut group = c.benchmark_group("d3-coalesce-eval");
    group.sample_size(10);
    for eval in [CoalesceEval::Full, CoalesceEval::Incremental] {
        let f0 = benchmark("bitcount").funcs[0].clone();
        let cfg = CoalesceConfig {
            eval,
            ..CoalesceConfig::new(params)
        };
        let mut probe = f0.clone();
        let stats = coalesce_allocate(&mut probe, &cfg).unwrap();
        eprintln!(
            "D3 {eval:?}: {} moves coalesced, final differential cost {:.1}",
            stats.moves_coalesced, stats.final_cost
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{eval:?}")),
            &eval,
            |b, &e| {
                b.iter(|| {
                    let mut f = f0.clone();
                    let cfg = CoalesceConfig {
                        eval: e,
                        ..CoalesceConfig::new(params)
                    };
                    black_box(coalesce_allocate(&mut f, &cfg).unwrap());
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
