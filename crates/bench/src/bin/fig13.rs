//! Figure 13 — code size normalized to the baseline.
//!
//! Paper shape: remapping grows code ~7% (its many `set_last_reg`s
//! outweigh the spill savings); select stays within ~1%; O-spill shrinks
//! ~4% and coalesce ~2% (fewer spill instructions, modest repair counts).

use dra_bench::{average, render_table};
use dra_core::lowend::{compile_and_run, Approach, LowEndSetup};
use dra_workloads::benchmark_names;

fn main() {
    let setup = LowEndSetup::default();
    let others = [
        Approach::Remapping,
        Approach::Select,
        Approach::OSpill,
        Approach::Coalesce,
    ];
    let mut rows = Vec::new();
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); others.len()];

    for name in benchmark_names() {
        let base = compile_and_run(name, Approach::Baseline, &setup)
            .unwrap_or_else(|e| panic!("{name}/baseline: {e}"));
        let mut row = vec![name.to_string()];
        for (ai, &a) in others.iter().enumerate() {
            let run = compile_and_run(name, a, &setup)
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", a.label()));
            let ratio = run.code_bits as f64 / base.code_bits as f64;
            columns[ai].push(ratio);
            row.push(format!("{ratio:.3}"));
        }
        rows.push(row);
    }
    let mut avg_row = vec!["AVERAGE".to_string()];
    for col in &columns {
        avg_row.push(format!("{:.3}", average(col)));
    }
    rows.push(avg_row);

    let mut header = vec!["benchmark".to_string()];
    header.extend(others.iter().map(|a| a.label().to_string()));
    print!(
        "{}",
        render_table(
            "Figure 13: code size normalized to baseline (1.0 = equal)",
            &header,
            &rows
        )
    );
    println!("\npaper shape: remapping ~1.07, select <= 1.01, O-spill ~0.96, coalesce ~0.98");
}
