//! Figure 13 — code size normalized to the baseline.
//!
//! Paper shape: remapping grows code ~7% (its many `set_last_reg`s
//! outweigh the spill savings); select stays within ~1%; O-spill shrinks
//! ~4% and coalesce ~2% (fewer spill instructions, modest repair counts).
//!
//! Besides the text table on stdout, writes `results/fig13.json` with the
//! raw ratios and the remapping-search work counters (`swap_delta`
//! evaluations, restarts executed, search wall-clock) so tooling can track
//! the search cost alongside the code-size outcome.

use dra_adjgraph::DiffParams;
use dra_bench::{average, batch_threads, emit_telemetry, render_table};
use dra_core::batch::run_lowend_matrix_with_telemetry;
use dra_core::lowend::{compile_and_run, compile_benchmark, Approach, LowEndRun, LowEndSetup};
use dra_regalloc::{remap_function, RemapConfig, RemapStrategy};
use dra_workloads::benchmark_names;
use std::fmt::Write as _;

/// Remap-search work aggregated over a run's functions.
fn remap_totals(run: &LowEndRun) -> (u64, u32, u64) {
    run.remap.iter().fold((0, 0, 0), |(e, s, n), st| {
        (e + st.evaluations, s + st.starts_run, n + st.search_nanos)
    })
}

fn main() {
    let mut setup = LowEndSetup::default();
    setup.batch_threads = batch_threads();
    let others = [
        Approach::Remapping,
        Approach::Select,
        Approach::OSpill,
        Approach::Coalesce,
    ];
    // Column 0 is the baseline the ratios divide by.
    let approaches = [Approach::Baseline]
        .iter()
        .chain(&others)
        .copied()
        .collect::<Vec<_>>();
    let names = benchmark_names();
    let (matrix, telemetry) = run_lowend_matrix_with_telemetry(&names, &approaches, &setup);
    emit_telemetry(&telemetry, "fig13");

    let mut rows = Vec::new();
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); others.len()];
    let mut json_benchmarks = Vec::new();
    for (name, runs) in names.iter().zip(&matrix) {
        let base = runs[0]
            .as_ref()
            .unwrap_or_else(|e| panic!("{name}/baseline: {e}"));
        let mut row = vec![name.to_string()];
        let mut json_approaches = Vec::new();
        for (ai, (&a, run)) in others.iter().zip(&runs[1..]).enumerate() {
            let run = run
                .as_ref()
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", a.label()));
            let ratio = run.code_bits as f64 / base.code_bits as f64;
            columns[ai].push(ratio);
            row.push(format!("{ratio:.3}"));
            let (evals, starts, nanos) = remap_totals(run);
            json_approaches.push(format!(
                concat!(
                    "{{\"approach\": \"{}\", \"code_ratio\": {:.6}, ",
                    "\"code_bits\": {}, \"remap_evaluations\": {}, ",
                    "\"remap_starts_run\": {}, \"remap_search_nanos\": {}}}"
                ),
                a.label(),
                ratio,
                run.code_bits,
                evals,
                starts,
                nanos
            ));
        }
        json_benchmarks.push(format!(
            "    {{\"name\": \"{name}\", \"baseline_code_bits\": {}, \"approaches\": [\n      {}\n    ]}}",
            base.code_bits,
            json_approaches.join(",\n      ")
        ));
        rows.push(row);
    }
    let mut avg_row = vec!["AVERAGE".to_string()];
    for col in &columns {
        avg_row.push(format!("{:.3}", average(col)));
    }
    rows.push(avg_row);

    let mut header = vec!["benchmark".to_string()];
    header.extend(others.iter().map(|a| a.label().to_string()));
    print!(
        "{}",
        render_table(
            "Figure 13: code size normalized to baseline (1.0 = equal)",
            &header,
            &rows
        )
    );
    println!("\npaper shape: remapping ~1.07, select <= 1.01, O-spill ~0.96, coalesce ~0.98");

    // --- Portfolio vs greedy-1000 at an equal evaluation budget ---------
    //
    // The search-portfolio acceptance experiment. Uncapped, greedy-1000
    // already certifies at the branch-and-bound optimum on these
    // benchmarks (see the gap table below), so the interesting regime is
    // a *constrained* equal budget: both searches get 1/8 of the
    // evaluations greedy-1000 naturally spends per searching function.
    // Greedy keeps the paper's fixed 1000 restarts and truncates every
    // descent; the portfolio concentrates the same budget on fewer,
    // complete greedy/SA/LNS racers. The portfolio must never be worse
    // and should win outright on some benchmarks at equal or lower
    // search time.
    let mut port_rows = Vec::new();
    let mut json_portfolio = Vec::new();
    for (name, runs) in names.iter().zip(&matrix) {
        let natural = runs[1]
            .as_ref()
            .unwrap_or_else(|e| panic!("{name}/remap: {e}"));
        let (nat_evals, _, _) = remap_totals(natural);
        let searching = natural.remap.iter().filter(|st| st.evaluations > 0).count() as u64;
        let budget = (nat_evals / searching.max(1) / 8).max(1);
        let mut setup_g = setup.clone();
        setup_g.remap_eval_budget = budget;
        let greedy = compile_and_run(name, Approach::Remapping, &setup_g)
            .unwrap_or_else(|e| panic!("{name}/greedy-capped: {e}"));
        let mut setup_p = setup_g.clone();
        setup_p.remap_strategy = RemapStrategy::Portfolio;
        let port = compile_and_run(name, Approach::Remapping, &setup_p)
            .unwrap_or_else(|e| panic!("{name}/portfolio: {e}"));
        let (g_evals, _, g_nanos) = remap_totals(&greedy);
        let (p_evals, _, p_nanos) = remap_totals(&port);
        port_rows.push(vec![
            name.to_string(),
            format!("{budget}"),
            format!("{}", greedy.dynamic_set_last_regs),
            format!("{}", port.dynamic_set_last_regs),
            format!("{g_evals}"),
            format!("{p_evals}"),
            format!("{:.2}", g_nanos as f64 / 1e6),
            format!("{:.2}", p_nanos as f64 / 1e6),
        ]);
        json_portfolio.push(format!(
            concat!(
                "    {{\"name\": \"{}\", \"eval_budget\": {}, ",
                "\"natural_greedy_evaluations\": {}, ",
                "\"greedy_dynamic_slr\": {}, \"portfolio_dynamic_slr\": {}, ",
                "\"greedy_evaluations\": {}, \"portfolio_evaluations\": {}, ",
                "\"greedy_search_nanos\": {}, \"portfolio_search_nanos\": {}}}"
            ),
            name,
            budget,
            nat_evals,
            greedy.dynamic_set_last_regs,
            port.dynamic_set_last_regs,
            g_evals,
            p_evals,
            g_nanos,
            p_nanos
        ));
    }
    print!(
        "\n{}",
        render_table(
            "Remap portfolio vs greedy-1000 at an equal (1/8-natural) eval budget",
            &[
                "benchmark".into(),
                "budget/fn".into(),
                "greedy dyn slr".into(),
                "portfolio dyn slr".into(),
                "greedy evals".into(),
                "portfolio evals".into(),
                "greedy ms".into(),
                "portfolio ms".into(),
            ],
            &port_rows
        )
    );

    // --- Optimality gap vs the certified branch-and-bound ---------------
    //
    // On the direct-encoded (`RegN = 8`) baseline allocations, the exact
    // branch-and-bound certifies the true optimum of the remap objective
    // at `DiffN = 4`, which measures every heuristic's absolute gap.
    let gap_params = DiffParams::new(8, 4);
    let heuristics: [(&str, RemapStrategy); 4] = [
        ("greedy", RemapStrategy::Greedy),
        ("anneal", RemapStrategy::Anneal),
        ("lns", RemapStrategy::Lns),
        ("portfolio", RemapStrategy::Portfolio),
    ];
    let mut json_gap = Vec::new();
    // Two regimes: a tight budget where the heuristics differ, and an
    // ample one where they should all close the gap.
    for gap_budget in [2_000u64, 50_000] {
        let mut gap_rows = Vec::new();
        for name in &names {
            let (prog, _, _) = compile_benchmark(name, Approach::Baseline, &setup)
                .unwrap_or_else(|e| panic!("{name}/baseline: {e}"));
            let mut bb_cfg = RemapConfig::new(gap_params);
            bb_cfg.strategy = RemapStrategy::BranchBound;
            bb_cfg.eval_budget = 5_000_000;
            let (mut optimal, mut bb_nodes) = (0.0f64, 0u64);
            for f in &prog.funcs {
                let mut f = f.clone();
                let st = remap_function(&mut f, &bb_cfg);
                assert!(
                    st.certified,
                    "{name}/{}: branch-and-bound must certify RegN = 8 instances",
                    f.name
                );
                optimal += st.cost_after;
                bb_nodes += st.bb_nodes;
            }
            let mut row = vec![name.to_string(), format!("{optimal:.1}")];
            let mut fields = vec![format!(
                "\"eval_budget\": {gap_budget}, \"optimal_cost\": {optimal:.6}, \"bb_nodes\": {bb_nodes}"
            )];
            for &(label, strat) in &heuristics {
                let mut cfg = RemapConfig::new(gap_params);
                cfg.exhaustive_limit = 0; // force the heuristic searches
                cfg.strategy = strat;
                cfg.starts = 64;
                cfg.eval_budget = gap_budget;
                let mut cost = 0.0f64;
                for f in &prog.funcs {
                    let mut f = f.clone();
                    cost += remap_function(&mut f, &cfg).cost_after;
                }
                let gap = cost - optimal;
                row.push(format!("{cost:.1} (+{gap:.1})"));
                fields.push(format!(
                    "\"{label}_cost\": {cost:.6}, \"{label}_gap\": {gap:.6}"
                ));
            }
            gap_rows.push(row);
            json_gap.push(format!(
                "    {{\"name\": \"{name}\", {}}}",
                fields.join(", ")
            ));
        }
        let mut gap_header = vec!["benchmark".to_string(), "optimal".to_string()];
        gap_header.extend(heuristics.iter().map(|&(l, _)| format!("{l} (gap)")));
        print!(
            "\n{}",
            render_table(
                &format!(
                    "Remap optimality gap vs certified branch-and-bound \
                     (RegN=8, DiffN=4, 64 starts, {gap_budget} evals)"
                ),
                &gap_header,
                &gap_rows
            )
        );
    }

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"figure\": \"fig13\",").unwrap();
    writeln!(
        json,
        "  \"remap_starts\": {}, \"remap_threads\": {},",
        setup.remap_starts, setup.remap_threads
    )
    .unwrap();
    writeln!(json, "  \"benchmarks\": [").unwrap();
    writeln!(json, "{}", json_benchmarks.join(",\n")).unwrap();
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"portfolio_vs_greedy\": [").unwrap();
    writeln!(json, "{}", json_portfolio.join(",\n")).unwrap();
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"optimality_gap\": [").unwrap();
    writeln!(json, "{}", json_gap.join(",\n")).unwrap();
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
    match std::fs::write("results/fig13.json", &json) {
        Ok(()) => eprintln!("wrote results/fig13.json"),
        Err(e) => eprintln!("could not write results/fig13.json: {e}"),
    }
}
