//! Figure 13 — code size normalized to the baseline.
//!
//! Paper shape: remapping grows code ~7% (its many `set_last_reg`s
//! outweigh the spill savings); select stays within ~1%; O-spill shrinks
//! ~4% and coalesce ~2% (fewer spill instructions, modest repair counts).
//!
//! Besides the text table on stdout, writes `results/fig13.json` with the
//! raw ratios and the remapping-search work counters (`swap_delta`
//! evaluations, restarts executed, search wall-clock) so tooling can track
//! the search cost alongside the code-size outcome.

use dra_bench::{average, batch_threads, emit_telemetry, render_table};
use dra_core::batch::run_lowend_matrix_with_telemetry;
use dra_core::lowend::{Approach, LowEndRun, LowEndSetup};
use dra_workloads::benchmark_names;
use std::fmt::Write as _;

/// Remap-search work aggregated over a run's functions.
fn remap_totals(run: &LowEndRun) -> (u64, u32, u64) {
    run.remap.iter().fold((0, 0, 0), |(e, s, n), st| {
        (e + st.evaluations, s + st.starts_run, n + st.search_nanos)
    })
}

fn main() {
    let mut setup = LowEndSetup::default();
    setup.batch_threads = batch_threads();
    let others = [
        Approach::Remapping,
        Approach::Select,
        Approach::OSpill,
        Approach::Coalesce,
    ];
    // Column 0 is the baseline the ratios divide by.
    let approaches = [Approach::Baseline]
        .iter()
        .chain(&others)
        .copied()
        .collect::<Vec<_>>();
    let names = benchmark_names();
    let (matrix, telemetry) = run_lowend_matrix_with_telemetry(&names, &approaches, &setup);
    emit_telemetry(&telemetry, "fig13");

    let mut rows = Vec::new();
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); others.len()];
    let mut json_benchmarks = Vec::new();
    for (name, runs) in names.iter().zip(&matrix) {
        let base = runs[0]
            .as_ref()
            .unwrap_or_else(|e| panic!("{name}/baseline: {e}"));
        let mut row = vec![name.to_string()];
        let mut json_approaches = Vec::new();
        for (ai, (&a, run)) in others.iter().zip(&runs[1..]).enumerate() {
            let run = run
                .as_ref()
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", a.label()));
            let ratio = run.code_bits as f64 / base.code_bits as f64;
            columns[ai].push(ratio);
            row.push(format!("{ratio:.3}"));
            let (evals, starts, nanos) = remap_totals(run);
            json_approaches.push(format!(
                concat!(
                    "{{\"approach\": \"{}\", \"code_ratio\": {:.6}, ",
                    "\"code_bits\": {}, \"remap_evaluations\": {}, ",
                    "\"remap_starts_run\": {}, \"remap_search_nanos\": {}}}"
                ),
                a.label(),
                ratio,
                run.code_bits,
                evals,
                starts,
                nanos
            ));
        }
        json_benchmarks.push(format!(
            "    {{\"name\": \"{name}\", \"baseline_code_bits\": {}, \"approaches\": [\n      {}\n    ]}}",
            base.code_bits,
            json_approaches.join(",\n      ")
        ));
        rows.push(row);
    }
    let mut avg_row = vec!["AVERAGE".to_string()];
    for col in &columns {
        avg_row.push(format!("{:.3}", average(col)));
    }
    rows.push(avg_row);

    let mut header = vec!["benchmark".to_string()];
    header.extend(others.iter().map(|a| a.label().to_string()));
    print!(
        "{}",
        render_table(
            "Figure 13: code size normalized to baseline (1.0 = equal)",
            &header,
            &rows
        )
    );
    println!("\npaper shape: remapping ~1.07, select <= 1.01, O-spill ~0.96, coalesce ~0.98");

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"figure\": \"fig13\",").unwrap();
    writeln!(
        json,
        "  \"remap_starts\": {}, \"remap_threads\": {},",
        setup.remap_starts, setup.remap_threads
    )
    .unwrap();
    writeln!(json, "  \"benchmarks\": [").unwrap();
    writeln!(json, "{}", json_benchmarks.join(",\n")).unwrap();
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
    match std::fs::write("results/fig13.json", &json) {
        Ok(()) => eprintln!("wrote results/fig13.json"),
        Err(e) => eprintln!("could not write results/fig13.json: {e}"),
    }
}
