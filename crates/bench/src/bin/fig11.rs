//! Figure 11 — percentage of static spill instructions over the entire
//! code, per benchmark, for the five setups.
//!
//! Paper averages: baseline 10.44%, remapping 6.87%, select 6.84%,
//! O-spill 7.32%, coalesce 5.55%. The shape to reproduce: every
//! differential setup well below the baseline; coalesce lowest; remapping
//! and select nearly tied; O-spill between them and the baseline.

use dra_bench::{average, batch_threads, emit_telemetry, render_table};
use dra_core::batch::run_lowend_matrix_with_telemetry;
use dra_core::lowend::{Approach, LowEndSetup};
use dra_workloads::benchmark_names;

fn main() {
    let mut setup = LowEndSetup::default();
    setup.batch_threads = batch_threads();
    let names = benchmark_names();
    let (matrix, telemetry) = run_lowend_matrix_with_telemetry(&names, &Approach::ALL, &setup);
    emit_telemetry(&telemetry, "fig11");

    let mut rows = Vec::new();
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); Approach::ALL.len()];
    for (name, runs) in names.iter().zip(&matrix) {
        let mut row = vec![name.to_string()];
        for (ai, (&a, run)) in Approach::ALL.iter().zip(runs).enumerate() {
            let run = run
                .as_ref()
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", a.label()));
            let p = run.spill_percent();
            columns[ai].push(p);
            row.push(format!("{p:.2}%"));
        }
        rows.push(row);
    }
    let mut avg_row = vec!["AVERAGE".to_string()];
    for col in &columns {
        avg_row.push(format!("{:.2}%", average(col)));
    }
    rows.push(avg_row);

    let mut header = vec!["benchmark".to_string()];
    header.extend(Approach::ALL.iter().map(|a| a.label().to_string()));
    print!(
        "{}",
        render_table("Figure 11: static spill percentage", &header, &rows)
    );
    println!(
        "\npaper averages: baseline 10.44  remapping 6.87  select 6.84  O-spill 7.32  coalesce 5.55"
    );
}
