//! Table 2 — loop speedups on the VLIW model across the `RegN` sweep
//! (`DiffN = 32`; `RegN = 32` is the no-differential baseline).
//!
//! Paper shape: large speedups (>70% at high `RegN`) for the optimized
//! (register-hungry) loops; all-loops speedup 10.23% at `RegN = 40` up to
//! 17.24% at 64, saturating past 48; overall close to all-loops because
//! loops dominate execution.

use dra_bench::{batch_threads, emit_telemetry, pct, render_table, suite_size};
use dra_core::highend::{run_highend_sweep_with_telemetry, speedup_percent, HighEndSetup};
use dra_workloads::{generate_loop_suite, LoopSuiteConfig};

fn main() {
    let n = suite_size();
    eprintln!("generating {n} loops (set DRA_LOOPS to change)…");
    let suite = generate_loop_suite(&LoopSuiteConfig {
        n_loops: n,
        ..LoopSuiteConfig::default()
    });

    eprintln!("pipelining the RegN sweep (this is the long part)…");
    let (sweep, telemetry) =
        run_highend_sweep_with_telemetry(&suite, &[32, 40, 48, 56, 64], batch_threads());
    emit_telemetry(&telemetry, "table2");
    let base = &sweep[0];
    let base_setup = HighEndSetup::at(32);
    let base_overall = base.overall_cycles(&base_setup, base.all_cycles);

    let mut rows = Vec::new();
    for agg in &sweep[1..] {
        let setup = HighEndSetup::at(agg.reg_n);
        let opt = speedup_percent(base.optimized_cycles as f64, agg.optimized_cycles as f64);
        let all = speedup_percent(base.all_cycles as f64, agg.all_cycles as f64);
        let overall = speedup_percent(
            base_overall,
            agg.overall_cycles(&setup, base.all_cycles),
        );
        rows.push(vec![
            format!("{}", agg.reg_n),
            pct(opt),
            pct(all),
            pct(overall),
        ]);
    }

    print!(
        "{}",
        render_table(
            &format!(
                "Table 2: speedup over RegN=32 ({} loops, {} optimized)",
                base.total_loops, base.optimized_loops
            ),
            &[
                "RegN".to_string(),
                "optimized loops".to_string(),
                "all loops".to_string(),
                "overall".to_string(),
            ],
            &rows
        )
    );
    println!("\npaper shape: optimized > +70% at high RegN; all-loops +10.23% (40) -> +17.24% (64), saturating past 48");
}
