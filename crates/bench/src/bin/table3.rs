//! Table 3 — spills in optimized loops and code growth across the `RegN`
//! sweep.
//!
//! Paper shape: spills drop steeply from `RegN = 32` to 40/48; code growth
//! is visible in the optimized loops (spill savings vs `set_last_reg`
//! additions, with a *shrink* possible at `RegN = 40`), but the overall
//! binary grows at most ~1.13% because the optimized loops are a small
//! slice of the code.

use dra_bench::{batch_threads, emit_telemetry, pct, render_table, suite_size};
use dra_core::highend::{run_highend_sweep_with_telemetry, HighEndSetup};
use dra_workloads::{generate_loop_suite, LoopSuiteConfig};

fn main() {
    let n = suite_size();
    eprintln!("generating {n} loops (set DRA_LOOPS to change)…");
    let suite = generate_loop_suite(&LoopSuiteConfig {
        n_loops: n,
        ..LoopSuiteConfig::default()
    });

    eprintln!("pipelining the RegN sweep (this is the long part)…");
    let (sweep, telemetry) =
        run_highend_sweep_with_telemetry(&suite, &[32, 40, 48, 56, 64], batch_threads());
    emit_telemetry(&telemetry, "table3");
    let base = &sweep[0];

    let mut rows = vec![vec![
        "32".to_string(),
        format!("{}", base.optimized_spills),
        pct(0.0),
        pct(0.0),
        pct(0.0),
    ]];
    for agg in &sweep[1..] {
        let setup = HighEndSetup::at(agg.reg_n);
        rows.push(vec![
            format!("{}", agg.reg_n),
            format!("{}", agg.optimized_spills),
            pct(agg.optimized_code_growth(base)),
            pct(agg.all_loops_code_growth(base)),
            pct(agg.overall_code_growth(base, &setup)),
        ]);
    }

    print!(
        "{}",
        render_table(
            &format!(
                "Table 3: spills and code growth ({} loops, {} optimized)",
                base.total_loops, base.optimized_loops
            ),
            &[
                "RegN".to_string(),
                "spills (optimized loops)".to_string(),
                "growth (optimized)".to_string(),
                "growth (all loops)".to_string(),
                "growth (all code)".to_string(),
            ],
            &rows
        )
    );
    println!("\npaper shape: spills fall steeply by RegN=48; overall code growth <= ~1.13%, possible shrink at RegN=40");
}
