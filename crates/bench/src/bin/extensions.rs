//! Beyond the paper's five setups: the Section 8.2 **adaptive** mode
//! (differential encoding only where pressure warrants it) and
//! **profile-guided** weights (Section 4's suggestion), compared against
//! the best in-paper approaches.

use dra_bench::{average, render_table};
use dra_core::lowend::{compile_and_run, Approach, LowEndSetup};
use dra_core::profile::compile_and_run_profiled;
use dra_workloads::benchmark_names;

fn main() {
    let setup = LowEndSetup::default();
    let mut rows = Vec::new();
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); 4];

    for name in benchmark_names() {
        let base = compile_and_run(name, Approach::Baseline, &setup)
            .unwrap_or_else(|e| panic!("{name}/baseline: {e}"));
        let spd = |cycles: u64| 100.0 * (base.cycles as f64 - cycles as f64) / cycles as f64;

        let select = compile_and_run(name, Approach::Select, &setup).unwrap();
        let coalesce = compile_and_run(name, Approach::Coalesce, &setup).unwrap();
        let adaptive = compile_and_run(name, Approach::Adaptive, &setup).unwrap();
        let profiled = compile_and_run_profiled(name, Approach::Adaptive, &setup).unwrap();
        for r in [&select, &coalesce, &adaptive, &profiled] {
            assert_eq!(r.ret_value, base.ret_value, "{name}: result diverged");
        }

        let vals = [
            spd(select.cycles),
            spd(coalesce.cycles),
            spd(adaptive.cycles),
            spd(profiled.cycles),
        ];
        for (i, v) in vals.iter().enumerate() {
            speedups[i].push(*v);
        }
        rows.push(vec![
            name.to_string(),
            format!("{:+.2}%", vals[0]),
            format!("{:+.2}%", vals[1]),
            format!("{:+.2}%", vals[2]),
            format!("{:+.2}%", vals[3]),
        ]);
    }
    let mut avg = vec!["AVERAGE".to_string()];
    for col in &speedups {
        avg.push(format!("{:+.2}%", average(col)));
    }
    rows.push(avg);

    print!(
        "{}",
        render_table(
            "Extensions: speedup over baseline",
            &[
                "benchmark".to_string(),
                "select".to_string(),
                "coalesce".to_string(),
                "adaptive (8.2)".to_string(),
                "adaptive+profile".to_string(),
            ],
            &rows
        )
    );
    println!("\nadaptive = differential encoding only in functions whose pressure exceeds");
    println!("the direct registers; profile = simulator block counts as edge weights.");
}
