//! Figure 14 — speedup over the baseline on the 5-stage machine.
//!
//! Paper averages: remapping 4.5%, select 9.7%, coalesce 12.1%, O-spill
//! 4.1%. Shape: coalesce best, select close behind, remapping and O-spill
//! modest (remapping's wins are eaten by its `set_last_reg`s).

use dra_bench::{average, batch_threads, emit_telemetry, render_table};
use dra_core::batch::run_lowend_matrix_with_telemetry;
use dra_core::lowend::{Approach, LowEndSetup};
use dra_workloads::benchmark_names;

fn main() {
    let mut setup = LowEndSetup::default();
    setup.batch_threads = batch_threads();
    let others = [
        Approach::Remapping,
        Approach::Select,
        Approach::OSpill,
        Approach::Coalesce,
    ];
    let approaches = [Approach::Baseline]
        .iter()
        .chain(&others)
        .copied()
        .collect::<Vec<_>>();
    let names = benchmark_names();
    let (matrix, telemetry) = run_lowend_matrix_with_telemetry(&names, &approaches, &setup);
    emit_telemetry(&telemetry, "fig14");

    let mut rows = Vec::new();
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); others.len()];
    for (name, runs) in names.iter().zip(&matrix) {
        let base = runs[0]
            .as_ref()
            .unwrap_or_else(|e| panic!("{name}/baseline: {e}"));
        let mut row = vec![name.to_string()];
        for (ai, (&a, run)) in others.iter().zip(&runs[1..]).enumerate() {
            let run = run
                .as_ref()
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", a.label()));
            assert_eq!(
                run.ret_value, base.ret_value,
                "{name}/{}: result diverged from baseline",
                a.label()
            );
            let speedup = 100.0 * (base.cycles as f64 - run.cycles as f64) / run.cycles as f64;
            columns[ai].push(speedup);
            row.push(format!("{speedup:+.2}%"));
        }
        rows.push(row);
    }
    let mut avg_row = vec!["AVERAGE".to_string()];
    for col in &columns {
        avg_row.push(format!("{:+.2}%", average(col)));
    }
    rows.push(avg_row);

    let mut header = vec!["benchmark".to_string()];
    header.extend(others.iter().map(|a| a.label().to_string()));
    print!(
        "{}",
        render_table("Figure 14: speedup over baseline", &header, &rows)
    );
    println!("\npaper averages: remapping +4.5  select +9.7  O-spill +4.1  coalesce +12.1");
}
