//! Figure 12 — the `set_last_reg` cost: static repair instructions as a
//! percentage of all instructions, for the three differential setups.
//!
//! Paper averages: remapping 10.41%, select 4.21%, coalesce 3.04%. Shape:
//! the post-pass pays by far the most; coalesce edges out select.

use dra_bench::{average, batch_threads, emit_telemetry, render_table};
use dra_core::batch::run_lowend_matrix_with_telemetry;
use dra_core::lowend::{Approach, LowEndSetup};
use dra_workloads::benchmark_names;

fn main() {
    let mut setup = LowEndSetup::default();
    setup.batch_threads = batch_threads();
    let approaches = [Approach::Remapping, Approach::Select, Approach::Coalesce];
    let names = benchmark_names();
    let (matrix, telemetry) = run_lowend_matrix_with_telemetry(&names, &approaches, &setup);
    emit_telemetry(&telemetry, "fig12");

    let mut rows = Vec::new();
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); approaches.len()];
    for (name, runs) in names.iter().zip(&matrix) {
        let mut row = vec![name.to_string()];
        for (ai, (&a, run)) in approaches.iter().zip(runs).enumerate() {
            let run = run
                .as_ref()
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", a.label()));
            let p = run.cost_percent();
            columns[ai].push(p);
            row.push(format!("{p:.2}%"));
        }
        rows.push(row);
    }
    let mut avg_row = vec!["AVERAGE".to_string()];
    for col in &columns {
        avg_row.push(format!("{:.2}%", average(col)));
    }
    rows.push(avg_row);

    let mut header = vec!["benchmark".to_string()];
    header.extend(approaches.iter().map(|a| a.label().to_string()));
    print!(
        "{}",
        render_table("Figure 12: set_last_reg cost percentage", &header, &rows)
    );
    println!("\npaper averages: remapping 10.41  select 4.21  coalesce 3.04");
}
