//! Table 1 — the low-end machine configuration (ARM/THUMB-like).

use dra_bench::render_table;
use dra_sim::LowEndConfig;

fn main() {
    let cfg = LowEndConfig::default();
    let rows: Vec<Vec<String>> = cfg
        .table1()
        .into_iter()
        .map(|(k, v)| vec![k, v])
        .collect();
    print!(
        "{}",
        render_table(
            "Table 1: low-end machine configuration",
            &["parameter".to_string(), "value".to_string()],
            &rows
        )
    );
}
