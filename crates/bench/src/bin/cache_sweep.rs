//! I-cache sensitivity: the paper's Section 1 motivation made measurable.
//!
//! "The memory footprint of a program also affects the memory traffic to
//! the code segment and determines the access pressure on the I-cache" —
//! this sweep runs one benchmark under every setup across shrinking
//! I-cache sizes and reports miss counts. Differential setups trade spill
//! (D-cache) traffic for `set_last_reg` fetches; tight I-caches price that
//! trade differently than roomy ones.

use dra_bench::render_table;
use dra_core::lowend::{compile_and_run, Approach, LowEndSetup};
use dra_sim::CacheConfig;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "sha".to_string());
    let sizes = [1u32, 2, 4, 8];

    let mut rows = Vec::new();
    let mut approaches = Approach::ALL.to_vec();
    approaches.push(Approach::Adaptive);
    for a in approaches {
        let mut row = vec![a.label().to_string()];
        for kib in sizes {
            let mut setup = LowEndSetup::default();
            setup.machine.icache = CacheConfig {
                size_bytes: kib * 1024,
                line_bytes: 32,
                assoc: 2,
                miss_penalty: 20,
            };
            let r = compile_and_run(&name, a, &setup)
                .unwrap_or_else(|e| panic!("{}/{kib}K: {e}", a.label()));
            row.push(format!("{} ({} im)", r.cycles, r.icache_misses));
        }
        rows.push(row);
    }

    let mut header = vec!["approach".to_string()];
    header.extend(sizes.iter().map(|k| format!("I$ {k} KiB")));
    print!(
        "{}",
        render_table(
            &format!("I-cache sweep on `{name}`: cycles (I-cache misses)"),
            &header,
            &rows
        )
    );
    println!("\ntighter I-caches penalize the code-size cost of set_last_regs;");
    println!("the paper's premise is that spill removal still wins (it does).");
}
