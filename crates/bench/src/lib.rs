//! # dra-bench — shared harness utilities for the experiment binaries
//!
//! One binary per table/figure of the paper's evaluation:
//!
//! | Binary   | Reproduces |
//! |----------|------------|
//! | `table1` | Table 1 — low-end machine configuration |
//! | `fig11`  | Figure 11 — static spill percentage per benchmark |
//! | `fig12`  | Figure 12 — `set_last_reg` cost percentage |
//! | `fig13`  | Figure 13 — code size normalized to the baseline |
//! | `fig14`  | Figure 14 — speedup over the baseline |
//! | `table2` | Table 2 — loop speedups across the `RegN` sweep |
//! | `table3` | Table 3 — loop spills and code growth across the sweep |
//! | `extensions` | beyond the paper: Section 8.2 adaptive mode + profile-guided weights |
//!
//! Run with `cargo run -p dra-bench --release --bin <name>`. The loop-suite
//! binaries honor `DRA_LOOPS=<n>` to shrink the 1928-loop suite for quick
//! runs, and every binary honors `DRA_THREADS=<n>` to pin the batch
//! driver's worker count (`0`/unset = one per CPU); results are identical
//! at any thread count. `DRA_CACHE_CAP=<n>` bounds both session caches
//! (see `dra_core::knob`). All knobs parse strictly — garbage aborts.

use std::fmt::Write as _;

/// Geometric mean of percentage values given as ratios.
pub fn average(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Render an aligned text table: a header row plus data rows.
pub fn render_table(title: &str, header: &[String], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let fmt_row = |row: &[String], widths: &[usize]| {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate() {
            if i == 0 {
                let _ = write!(line, "{:<w$}", cell, w = widths[i]);
            } else {
                let _ = write!(line, "  {:>w$}", cell, w = widths[i]);
            }
        }
        line
    };
    let _ = writeln!(out, "{}", fmt_row(header, &widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
    let _ = writeln!(out, "{}", "-".repeat(total));
    for row in rows {
        let _ = writeln!(out, "{}", fmt_row(row, &widths));
    }
    out
}

// Strict knob parsing lives in dra-core (`drac` needs it too, and core
// cannot depend on the bench harness); re-exported here so the figure
// binaries and existing callers keep their import path.
pub use dra_core::knob::{env_knob, parse_knob};

/// Loop-suite size: `DRA_LOOPS` env override, defaulting to the paper's
/// 1928.
///
/// # Panics
///
/// On an unparseable `DRA_LOOPS` value.
pub fn suite_size() -> usize {
    env_knob("DRA_LOOPS", 1928)
}

/// Batch-driver worker count: `DRA_THREADS` env override, defaulting to
/// `0` (one worker per CPU).
///
/// # Panics
///
/// On an unparseable `DRA_THREADS` value.
pub fn batch_threads() -> usize {
    env_knob("DRA_THREADS", 0)
}

/// Write `telemetry` to `results/telemetry/<binary>.json` (relative to
/// the working directory, like every other `results/` artifact), logging
/// the outcome to stderr. Emission failure is reported but non-fatal: a
/// missing `results/` directory should not kill a figure run.
pub fn emit_telemetry(telemetry: &dra_core::Telemetry, binary: &str) {
    match telemetry.write_results(std::path::Path::new("."), binary) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results/telemetry/{binary}.json: {e}"),
    }
}

/// Format a percentage with sign, e.g. `+1.13%` / `-4.00%`.
pub fn pct(v: f64) -> String {
    format!("{v:+.2}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_of_values() {
        assert_eq!(average(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(average(&[]), 0.0);
    }

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            "T",
            &["name".into(), "x".into()],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "22".into()],
            ],
        );
        assert!(t.contains("== T =="));
        assert!(t.contains("long-name"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn pct_formats_sign() {
        assert_eq!(pct(1.5), "+1.50%");
        assert_eq!(pct(-2.0), "-2.00%");
    }

    #[test]
    fn knob_parses_valid_values() {
        assert_eq!(parse_knob("DRA_LOOPS", "64", 1928), 64);
        assert_eq!(parse_knob("DRA_THREADS", " 8 ", 0), 8);
        assert_eq!(parse_knob("DRA_THREADS", "0", 4), 0);
    }

    #[test]
    fn knob_empty_means_default() {
        assert_eq!(parse_knob("DRA_LOOPS", "", 1928), 1928);
        assert_eq!(parse_knob("DRA_THREADS", "  ", 0), 0);
    }

    #[test]
    fn knob_rejects_garbage_loudly() {
        for bad in ["abc", "-3", "1.5", "8 threads"] {
            let err = std::panic::catch_unwind(|| parse_knob("DRA_THREADS", bad, 0))
                .expect_err("garbage must panic, not fall back to the default");
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert!(
                msg.contains("DRA_THREADS") && msg.contains(bad),
                "panic must name the knob and the offending value: {msg:?}"
            );
        }
    }

    #[test]
    fn env_knobs_read_the_environment() {
        // This is the only test touching these env vars, so there is no
        // parallel-test race on the process-global environment.
        std::env::set_var("DRA_LOOPS", "123");
        assert_eq!(suite_size(), 123);
        std::env::remove_var("DRA_LOOPS");
        assert_eq!(suite_size(), 1928);
        std::env::set_var("DRA_THREADS", "junk");
        let err = std::panic::catch_unwind(batch_threads);
        std::env::remove_var("DRA_THREADS");
        assert!(err.is_err(), "unparseable DRA_THREADS must panic");
        assert_eq!(batch_threads(), 0);
    }
}
