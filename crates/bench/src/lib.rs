//! # dra-bench — shared harness utilities for the experiment binaries
//!
//! One binary per table/figure of the paper's evaluation:
//!
//! | Binary   | Reproduces |
//! |----------|------------|
//! | `table1` | Table 1 — low-end machine configuration |
//! | `fig11`  | Figure 11 — static spill percentage per benchmark |
//! | `fig12`  | Figure 12 — `set_last_reg` cost percentage |
//! | `fig13`  | Figure 13 — code size normalized to the baseline |
//! | `fig14`  | Figure 14 — speedup over the baseline |
//! | `table2` | Table 2 — loop speedups across the `RegN` sweep |
//! | `table3` | Table 3 — loop spills and code growth across the sweep |
//! | `extensions` | beyond the paper: Section 8.2 adaptive mode + profile-guided weights |
//!
//! Run with `cargo run -p dra-bench --release --bin <name>`. The loop-suite
//! binaries honor `DRA_LOOPS=<n>` to shrink the 1928-loop suite for quick
//! runs, and every binary honors `DRA_THREADS=<n>` to pin the batch
//! driver's worker count (`0`/unset = one per CPU); results are identical
//! at any thread count.

use std::fmt::Write as _;

/// Geometric mean of percentage values given as ratios.
pub fn average(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Render an aligned text table: a header row plus data rows.
pub fn render_table(title: &str, header: &[String], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let fmt_row = |row: &[String], widths: &[usize]| {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate() {
            if i == 0 {
                let _ = write!(line, "{:<w$}", cell, w = widths[i]);
            } else {
                let _ = write!(line, "  {:>w$}", cell, w = widths[i]);
            }
        }
        line
    };
    let _ = writeln!(out, "{}", fmt_row(header, &widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
    let _ = writeln!(out, "{}", "-".repeat(total));
    for row in rows {
        let _ = writeln!(out, "{}", fmt_row(row, &widths));
    }
    out
}

/// Loop-suite size: `DRA_LOOPS` env override, defaulting to the paper's
/// 1928.
pub fn suite_size() -> usize {
    std::env::var("DRA_LOOPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1928)
}

/// Batch-driver worker count: `DRA_THREADS` env override, defaulting to
/// `0` (one worker per CPU).
pub fn batch_threads() -> usize {
    std::env::var("DRA_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Format a percentage with sign, e.g. `+1.13%` / `-4.00%`.
pub fn pct(v: f64) -> String {
    format!("{v:+.2}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_of_values() {
        assert_eq!(average(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(average(&[]), 0.0);
    }

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            "T",
            &["name".into(), "x".into()],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "22".into()],
            ],
        );
        assert!(t.contains("== T =="));
        assert!(t.contains("long-name"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn pct_formats_sign() {
        assert_eq!(pct(1.5), "+1.50%");
        assert_eq!(pct(-2.0), "-2.00%");
    }
}
