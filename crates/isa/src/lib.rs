//! # dra-isa — target instruction-set geometry and code-size accounting
//!
//! The paper's evaluation measures code size under two machine models:
//!
//! * **LEAF16** — an ARM/THUMB-like 16-bit embedded ISA (Section 10.1):
//!   3-bit register fields, so 8 directly-addressable registers even though
//!   the hardware has 16.
//! * **LEAF32** — a 32-bit VLIW ISA (Section 10.2): 32 architected
//!   registers in 5-bit fields, 64 physical.
//!
//! Differential encoding never changes the *field width* — it changes how
//! many registers a field of that width can reach. Code size therefore
//! moves only through instruction count (spills removed, `set_last_reg`s
//! added), which is exactly how Figure 13 and Table 3 behave.
//!
//! ```
//! use dra_ir::{BinOp, Inst, PReg};
//! use dra_isa::{decode_inst, encode_inst, IsaGeometry};
//!
//! let geom = IsaGeometry::leaf16(3);
//! let add = Inst::Bin {
//!     op: BinOp::Add,
//!     dst: PReg(2).into(),
//!     lhs: PReg(0).into(),
//!     rhs: PReg(1).into(),
//! };
//! // Field codes in access order (src1, src2, dst) — here direct numbers.
//! let words = encode_inst(&add, &geom, &[0, 1, 2])?;
//! assert_eq!(words.len(), 1, "one 16-bit word");
//! let decoded = decode_inst(&words, &geom)?;
//! assert_eq!(decoded.fields, vec![0, 1, 2]);
//! # Ok::<(), dra_isa::AsmError>(())
//! ```

pub mod asm;
pub mod geometry;
pub mod size;

pub use asm::{decode_inst, encode_inst, AsmError, DecodedInst};
pub use geometry::IsaGeometry;
pub use size::{code_size_bits, function_size_bits, register_field_fraction, words_for_inst};
