//! Bit-exact assembly and disassembly of LEAF instruction words.
//!
//! The register *fields* of each word hold either direct register numbers
//! or differential codes (the output of `dra-encoding`'s field encoder) —
//! the word layouts are identical, which is the paper's deployment story:
//! only the decode stage changes, not the instruction formats.
//!
//! Formats (LEAF16 shown; LEAF32 scales the widths):
//!
//! ```text
//! R3       [opc:6][f1:3][f2:3][f3:3][pad]          bin, call (≤3 fields)
//! R2I      [opc:6][f1:3][f2:3][imm:4]              bin-imm, load, store
//! R1I      [opc:6][f1:3][imm:7]                    mov-imm, getparam, spill
//! BR       [opc:6][target:10]                      br
//! CBR      [opc:6][cond:3][f1:3][f2:3][pad] + ext  cond-br (two targets)
//! SLR      [opc:6][value:6][delay:3][pad]          set_last_reg
//! BARE     [opc:6][pad:10]                         ret, nop
//! ```
//!
//! Any immediate/offset/target that does not fit its in-word slot spills
//! into one 16-bit extension word (two for 32-bit values). The paper's
//! code-size accounting ([`crate::words_for_inst`]) is defined as *this*
//! encoder's output length, so the two can never disagree.

use crate::geometry::IsaGeometry;
use dra_ir::{BinOp, Cond, Inst, RegClass};
use std::error::Error;
use std::fmt;

/// Assembly errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsmError {
    /// A register field code does not fit `reg_field_bits`.
    FieldTooWide {
        /// The offending code.
        code: u16,
        /// Field width in bits.
        bits: u32,
    },
    /// An instruction carries more register fields than the format allows.
    TooManyFields {
        /// Field count.
        n: usize,
    },
    /// The word stream ended inside an instruction.
    Truncated,
    /// An unknown opcode was encountered while disassembling.
    BadOpcode {
        /// The raw opcode value.
        opcode: u16,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::FieldTooWide { code, bits } => {
                write!(f, "register field code {code} exceeds {bits} bits")
            }
            AsmError::TooManyFields { n } => write!(f, "{n} register fields exceed the format"),
            AsmError::Truncated => write!(f, "word stream truncated mid-instruction"),
            AsmError::BadOpcode { opcode } => write!(f, "unknown opcode {opcode}"),
        }
    }
}

impl Error for AsmError {}

/// Opcode numbers (6 bits). Sub-operations (ALU op, condition) are folded
/// into the opcode space, as THUMB does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
enum Opc {
    // 0..10: three-register ALU.
    BinBase = 0,
    // 10..20: two-register + immediate ALU.
    BinImmBase = 10,
    Mov = 20,
    MovImm = 21,
    GetParam = 22,
    Load = 23,
    Store = 24,
    SpillLoad = 25,
    SpillStore = 26,
    Br = 27,
    // 28..34: conditional branches per condition.
    CondBrBase = 28,
    Call = 34,
    Ret = 35,
    RetVal = 36,
    SetLastRegInt = 37,
    SetLastRegFloat = 38,
    Nop = 39,
}

fn binop_index(op: BinOp) -> u16 {
    BinOp::ALL.iter().position(|&o| o == op).expect("known op") as u16
}

fn cond_index(c: Cond) -> u16 {
    Cond::ALL.iter().position(|&x| x == c).expect("known cond") as u16
}

/// A disassembled instruction skeleton: opcode class, raw register field
/// codes (direct numbers or differential codes — the disassembler cannot
/// tell), and immediates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodedInst {
    /// Raw opcode.
    pub opcode: u16,
    /// Register field codes in access order.
    pub fields: Vec<u16>,
    /// Immediate / offset / slot / callee, if the format has one.
    pub imm: Option<i32>,
    /// Branch targets, if any.
    pub targets: Vec<u32>,
    /// Words consumed.
    pub words: usize,
}

/// Signed-fit check with the extension-marker pattern reserved: values in
/// `(-2^(bits-1), 2^(bits-1))` ride in-word; the most negative pattern
/// marks "value in extension words".
fn fits_signed(v: i64, bits: u32) -> bool {
    if bits == 0 {
        return false;
    }
    let half = 1i64 << (bits - 1);
    v > -half && v < half
}

/// The reserved marker for a signed in-word slot.
fn signed_marker(bits: u32) -> u64 {
    1u64 << (bits - 1) // most negative two's-complement pattern
}

/// Unsigned-fit check with all-ones reserved as the extension marker.
fn fits_unsigned_nonmarker(v: u64, bits: u32) -> bool {
    bits < 64 && v < (1u64 << bits) - 1
}

/// Unsigned-fit check.
fn fits_unsigned(v: u64, bits: u32) -> bool {
    bits >= 64 || v < (1u64 << bits)
}

struct Emitter<'a> {
    geom: &'a IsaGeometry,
    words: Vec<u16>,
    cur: u64,
    used: u32,
}

impl<'a> Emitter<'a> {
    fn new(geom: &'a IsaGeometry) -> Self {
        Emitter {
            geom,
            words: Vec::new(),
            cur: 0,
            used: 0,
        }
    }

    fn put(&mut self, v: u64, bits: u32) {
        debug_assert!(fits_unsigned(v, bits), "{v} in {bits} bits");
        self.cur = (self.cur << bits) | (v & ((1u64 << bits) - 1));
        self.used += bits;
        debug_assert!(self.used <= self.geom.word_bits);
    }

    /// Pad the current word and flush it (16-bit words for LEAF16; LEAF32
    /// words are emitted as two u16 halves, high first).
    fn flush(&mut self) {
        let pad = self.geom.word_bits - self.used;
        self.cur <<= pad;
        if self.geom.word_bits == 16 {
            self.words.push(self.cur as u16);
        } else {
            self.words.push((self.cur >> 16) as u16);
            self.words.push(self.cur as u16);
        }
        self.cur = 0;
        self.used = 0;
    }

    fn ext16(&mut self, v: u16) {
        self.words.push(v);
    }
}

/// Encode one instruction. `fields` are the register field codes in the
/// nominal access order (`src1, src2, …, dst`); pass the operands' direct
/// register numbers for direct encoding, or the differential codes from
/// `dra-encoding::encode_fields`.
///
/// # Errors
///
/// [`AsmError::FieldTooWide`] when a code does not fit the geometry's
/// field width, [`AsmError::TooManyFields`] for malformed input.
pub fn encode_inst(inst: &Inst, geom: &IsaGeometry, fields: &[u16]) -> Result<Vec<u16>, AsmError> {
    let fb = geom.reg_field_bits;
    for &c in fields {
        if !fits_unsigned(c as u64, fb) {
            return Err(AsmError::FieldTooWide { code: c, bits: fb });
        }
    }
    if fields.len() > geom.max_reg_fields as usize {
        return Err(AsmError::TooManyFields { n: fields.len() });
    }
    let ob = geom.opcode_bits;
    let mut e = Emitter::new(geom);
    let field = |e: &mut Emitter<'_>, i: usize| {
        e.put(fields.get(i).copied().unwrap_or(0) as u64, fb);
    };

    // Immediate slot left in an R2-format word.
    let imm2 = geom.word_bits - ob - 2 * fb;
    // Immediate slot in an R1-format word.
    let imm1 = geom.word_bits - ob - fb;

    match inst {
        Inst::Bin { op, .. } => {
            e.put(Opc::BinBase as u64 + binop_index(*op) as u64, ob);
            field(&mut e, 0);
            field(&mut e, 1);
            field(&mut e, 2);
            e.flush();
        }
        Inst::BinImm { op, imm, .. } => {
            e.put(Opc::BinImmBase as u64 + binop_index(*op) as u64, ob);
            field(&mut e, 0);
            field(&mut e, 1);
            if fits_signed(*imm as i64, imm2) {
                e.put((*imm as i64 as u64) & ((1 << imm2) - 1), imm2);
                e.flush();
            } else {
                e.put(signed_marker(imm2), imm2);
                e.flush();
                e.ext16(*imm as u16);
                e.ext16((*imm >> 16) as u16);
            }
        }
        Inst::Mov { .. } => {
            e.put(Opc::Mov as u64, ob);
            field(&mut e, 0);
            field(&mut e, 1);
            e.flush();
        }
        Inst::MovImm { imm, .. } => {
            e.put(Opc::MovImm as u64, ob);
            field(&mut e, 0);
            if fits_signed(*imm as i64, imm1) {
                e.put((*imm as i64 as u64) & ((1 << imm1) - 1), imm1);
                e.flush();
            } else {
                e.put(signed_marker(imm1), imm1);
                e.flush();
                e.ext16(*imm as u16);
                e.ext16((*imm >> 16) as u16);
            }
        }
        Inst::GetParam { index, .. } => {
            e.put(Opc::GetParam as u64, ob);
            field(&mut e, 0);
            e.put(*index as u64, imm1.min(8));
            e.flush();
        }
        Inst::Load { offset, .. } | Inst::Store { offset, .. } => {
            let opc = if matches!(inst, Inst::Load { .. }) {
                Opc::Load
            } else {
                Opc::Store
            };
            e.put(opc as u64, ob);
            field(&mut e, 0);
            field(&mut e, 1);
            // Offsets are word-scaled (the THUMB trick): offset/8 must fit.
            let scaled = offset / 8;
            if offset % 8 == 0 && fits_signed(scaled as i64, imm2) {
                e.put((scaled as i64 as u64) & ((1 << imm2) - 1), imm2);
                e.flush();
            } else {
                e.put(signed_marker(imm2), imm2);
                e.flush();
                e.ext16(*offset as u16);
                e.ext16((*offset >> 16) as u16);
            }
        }
        Inst::SpillLoad { slot, .. } | Inst::SpillStore { slot, .. } => {
            let opc = if matches!(inst, Inst::SpillLoad { .. }) {
                Opc::SpillLoad
            } else {
                Opc::SpillStore
            };
            e.put(opc as u64, ob);
            field(&mut e, 0);
            if fits_unsigned_nonmarker(slot.0 as u64, imm1) {
                e.put(slot.0 as u64, imm1);
                e.flush();
            } else {
                e.put((1u64 << imm1) - 1, imm1); // all-ones marker
                e.flush();
                e.ext16(slot.0 as u16);
                e.ext16((slot.0 >> 16) as u16);
            }
        }
        Inst::Br { target } => {
            e.put(Opc::Br as u64, ob);
            let tb = geom.word_bits - ob;
            if fits_unsigned_nonmarker(target.0 as u64, tb) {
                e.put(target.0 as u64, tb);
                e.flush();
            } else {
                e.put((1u64 << tb) - 1, tb); // all-ones marker
                e.flush();
                e.ext16(target.0 as u16);
            }
        }
        Inst::CondBr {
            cond,
            then_bb,
            else_bb,
            ..
        } => {
            e.put(Opc::CondBrBase as u64 + cond_index(*cond) as u64, ob);
            field(&mut e, 0);
            field(&mut e, 1);
            e.flush();
            // Two targets ride one extension word each (block-id space).
            e.ext16(then_bb.0 as u16);
            e.ext16(else_bb.0 as u16);
        }
        Inst::Call { callee, .. } => {
            e.put(Opc::Call as u64, ob);
            field(&mut e, 0);
            field(&mut e, 1);
            field(&mut e, 2);
            e.flush();
            e.ext16(*callee as u16);
        }
        Inst::Ret { value } => {
            let opc = if value.is_some() { Opc::RetVal } else { Opc::Ret };
            e.put(opc as u64, ob);
            if value.is_some() {
                field(&mut e, 0);
            }
            e.flush();
        }
        Inst::SetLastReg {
            class,
            value,
            delay,
        } => {
            let opc = match class {
                RegClass::Int => Opc::SetLastRegInt,
                RegClass::Float => Opc::SetLastRegFloat,
            };
            e.put(opc as u64, ob);
            e.put(*value as u64, 6);
            e.put(*delay as u64, 3);
            e.flush();
        }
        Inst::Nop => {
            e.put(Opc::Nop as u64, ob);
            e.flush();
        }
    }
    Ok(e.words)
}

struct Cursor<'a> {
    words: &'a [u16],
    pos: usize,
    geom: &'a IsaGeometry,
    cur: u64,
    left: u32,
}

impl<'a> Cursor<'a> {
    fn load_word(&mut self) -> Result<(), AsmError> {
        if self.geom.word_bits == 16 {
            let w = *self.words.get(self.pos).ok_or(AsmError::Truncated)?;
            self.pos += 1;
            self.cur = w as u64;
        } else {
            let hi = *self.words.get(self.pos).ok_or(AsmError::Truncated)?;
            let lo = *self.words.get(self.pos + 1).ok_or(AsmError::Truncated)?;
            self.pos += 2;
            self.cur = ((hi as u64) << 16) | lo as u64;
        }
        self.left = self.geom.word_bits;
        Ok(())
    }

    fn take(&mut self, bits: u32) -> u64 {
        debug_assert!(bits <= self.left);
        self.left -= bits;
        (self.cur >> self.left) & ((1u64 << bits) - 1)
    }

    fn ext16(&mut self) -> Result<u16, AsmError> {
        let w = *self.words.get(self.pos).ok_or(AsmError::Truncated)?;
        self.pos += 1;
        Ok(w)
    }

    fn ext32(&mut self) -> Result<i32, AsmError> {
        let lo = self.ext16()? as u32;
        let hi = self.ext16()? as u32;
        Ok((lo | (hi << 16)) as i32)
    }
}

/// Decode one instruction starting at `words[0]`.
///
/// # Errors
///
/// [`AsmError::Truncated`] / [`AsmError::BadOpcode`].
pub fn decode_inst(words: &[u16], geom: &IsaGeometry) -> Result<DecodedInst, AsmError> {
    let mut c = Cursor {
        words,
        pos: 0,
        geom,
        cur: 0,
        left: 0,
    };
    c.load_word()?;
    let ob = geom.opcode_bits;
    let fb = geom.reg_field_bits;
    let imm2 = geom.word_bits - ob - 2 * fb;
    let imm1 = geom.word_bits - ob - fb;
    let opcode = c.take(ob) as u16;

    let mut out = DecodedInst {
        opcode,
        fields: Vec::new(),
        imm: None,
        targets: Vec::new(),
        words: 0,
    };
    match opcode {
        o if o < Opc::BinImmBase as u16 => {
            for _ in 0..3 {
                out.fields.push(c.take(fb) as u16);
            }
        }
        o if o < Opc::Mov as u16 => {
            out.fields.push(c.take(fb) as u16);
            out.fields.push(c.take(fb) as u16);
            let raw = c.take(imm2);
            out.imm = Some(if raw == signed_marker(imm2) {
                c.ext32()?
            } else {
                sign_extend(raw, imm2) as i32
            });
        }
        o if o == Opc::Mov as u16 => {
            out.fields.push(c.take(fb) as u16);
            out.fields.push(c.take(fb) as u16);
        }
        o if o == Opc::MovImm as u16 => {
            out.fields.push(c.take(fb) as u16);
            let raw = c.take(imm1);
            out.imm = Some(if raw == signed_marker(imm1) {
                c.ext32()?
            } else {
                sign_extend(raw, imm1) as i32
            });
        }
        o if o == Opc::GetParam as u16 => {
            out.fields.push(c.take(fb) as u16);
            out.imm = Some(c.take(imm1.min(8)) as i32);
        }
        o if o == Opc::Load as u16 || o == Opc::Store as u16 => {
            out.fields.push(c.take(fb) as u16);
            out.fields.push(c.take(fb) as u16);
            let raw = c.take(imm2);
            out.imm = Some(if raw == signed_marker(imm2) {
                c.ext32()?
            } else {
                (sign_extend(raw, imm2) * 8) as i32
            });
        }
        o if o == Opc::SpillLoad as u16 || o == Opc::SpillStore as u16 => {
            out.fields.push(c.take(fb) as u16);
            let raw = c.take(imm1);
            out.imm = Some(if raw == (1u64 << imm1) - 1 {
                c.ext32()?
            } else {
                raw as i32
            });
        }
        o if o == Opc::Br as u16 => {
            let tb = geom.word_bits - ob;
            let raw = c.take(tb);
            out.targets.push(if raw == (1u64 << tb) - 1 {
                c.ext16()? as u32
            } else {
                raw as u32
            });
        }
        o if (Opc::CondBrBase as u16..Opc::Call as u16).contains(&o) => {
            out.fields.push(c.take(fb) as u16);
            out.fields.push(c.take(fb) as u16);
            out.targets.push(c.ext16()? as u32);
            out.targets.push(c.ext16()? as u32);
        }
        o if o == Opc::Call as u16 => {
            for _ in 0..3 {
                out.fields.push(c.take(fb) as u16);
            }
            out.imm = Some(c.ext16()? as i32);
        }
        o if o == Opc::Ret as u16 => {}
        o if o == Opc::RetVal as u16 => {
            out.fields.push(c.take(fb) as u16);
        }
        o if o == Opc::SetLastRegInt as u16 || o == Opc::SetLastRegFloat as u16 => {
            out.imm = Some(((c.take(6) << 3) | c.take(3)) as i32);
        }
        o if o == Opc::Nop as u16 => {}
        _ => return Err(AsmError::BadOpcode { opcode }),
    }
    out.words = c.pos;
    Ok(out)
}

fn sign_extend(raw: u64, bits: u32) -> i64 {
    let shift = 64 - bits;
    ((raw << shift) as i64) >> shift
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra_ir::{BlockId, PReg, Reg, SpillSlot};

    fn geom() -> IsaGeometry {
        IsaGeometry::leaf16(3)
    }

    fn r(n: u8) -> Reg {
        Reg::Phys(PReg(n))
    }

    #[test]
    fn r3_roundtrip() {
        let i = Inst::Bin {
            op: BinOp::Xor,
            dst: r(2),
            lhs: r(5),
            rhs: r(7),
        };
        let w = encode_inst(&i, &geom(), &[5, 7, 2]).unwrap();
        assert_eq!(w.len(), 1);
        let d = decode_inst(&w, &geom()).unwrap();
        assert_eq!(d.fields, vec![5, 7, 2]);
        assert_eq!(d.opcode, binop_index(BinOp::Xor));
        assert_eq!(d.words, 1);
    }

    #[test]
    fn mov_imm_roundtrip() {
        let i = Inst::MovImm { dst: r(3), imm: -9 };
        let w = encode_inst(&i, &geom(), &[3]).unwrap();
        let d = decode_inst(&w, &geom()).unwrap();
        assert_eq!(d.fields, vec![3]);
        assert_eq!(d.imm, Some(-9));
    }

    #[test]
    fn scaled_offset_roundtrip() {
        let i = Inst::Load {
            dst: r(1),
            base: r(0),
            offset: 24,
        };
        let w = encode_inst(&i, &geom(), &[0, 1]).unwrap();
        assert_eq!(w.len(), 1, "24 = 3 words, fits scaled");
        let d = decode_inst(&w, &geom()).unwrap();
        assert_eq!(d.imm, Some(24));
    }

    #[test]
    fn cond_br_uses_extension_words() {
        let i = Inst::CondBr {
            cond: Cond::Lt,
            lhs: r(1),
            rhs: r(2),
            then_bb: BlockId(7),
            else_bb: BlockId(300),
        };
        let w = encode_inst(&i, &geom(), &[1, 2]).unwrap();
        assert_eq!(w.len(), 3);
        let d = decode_inst(&w, &geom()).unwrap();
        assert_eq!(d.targets, vec![7, 300]);
        assert_eq!(d.opcode, Opc::CondBrBase as u16 + cond_index(Cond::Lt));
    }

    #[test]
    fn set_last_reg_encodes_value_and_delay() {
        let i = Inst::SetLastReg {
            class: RegClass::Int,
            value: 11,
            delay: 2,
        };
        let w = encode_inst(&i, &geom(), &[]).unwrap();
        assert_eq!(w.len(), 1);
        let d = decode_inst(&w, &geom()).unwrap();
        assert_eq!(d.imm, Some((11 << 3) | 2));
    }

    #[test]
    fn spill_slot_roundtrip() {
        let i = Inst::SpillStore {
            src: r(4),
            slot: SpillSlot(19),
        };
        let w = encode_inst(&i, &geom(), &[4]).unwrap();
        let d = decode_inst(&w, &geom()).unwrap();
        assert_eq!(d.fields, vec![4]);
        assert_eq!(d.imm, Some(19));
    }

    #[test]
    fn field_too_wide_rejected() {
        // Direct encoding of r9 cannot fit a 3-bit field: the exact
        // bottleneck the paper's scheme exists to dodge.
        let i = Inst::Mov { dst: r(9), src: r(0) };
        let err = encode_inst(&i, &geom(), &[0, 9]).unwrap_err();
        assert_eq!(err, AsmError::FieldTooWide { code: 9, bits: 3 });
    }

    #[test]
    fn differential_codes_fit_where_numbers_do_not() {
        // Same instruction, differential field codes (diffs < 8): fits.
        let i = Inst::Mov { dst: r(9), src: r(0) };
        let w = encode_inst(&i, &geom(), &[0, 1]).unwrap();
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn leaf32_words_are_two_halves() {
        let g = IsaGeometry::leaf32(5);
        let i = Inst::Bin {
            op: BinOp::Add,
            dst: r(30),
            lhs: r(1),
            rhs: r(2),
        };
        let w = encode_inst(&i, &g, &[1, 2, 30]).unwrap();
        assert_eq!(w.len(), 2, "one 32-bit word = two u16 halves");
        let d = decode_inst(&w, &g).unwrap();
        assert_eq!(d.fields, vec![1, 2, 30]);
    }

    #[test]
    fn truncated_stream_detected() {
        let i = Inst::CondBr {
            cond: Cond::Eq,
            lhs: r(0),
            rhs: r(1),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        let w = encode_inst(&i, &geom(), &[0, 1]).unwrap();
        let err = decode_inst(&w[..2], &geom()).unwrap_err();
        assert_eq!(err, AsmError::Truncated);
    }

    #[test]
    fn ret_variants() {
        let w = encode_inst(&Inst::Ret { value: None }, &geom(), &[]).unwrap();
        let d = decode_inst(&w, &geom()).unwrap();
        assert!(d.fields.is_empty());
        let w = encode_inst(&Inst::Ret { value: Some(r(3)) }, &geom(), &[3]).unwrap();
        let d = decode_inst(&w, &geom()).unwrap();
        assert_eq!(d.fields, vec![3]);
    }
}
