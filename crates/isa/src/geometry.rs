//! Instruction-word geometry of the two machine models.

/// The bit-level layout of one instruction word.
///
/// A word is `opcode_bits` of opcode/condition/misc encoding followed by up
/// to `max_reg_fields` register fields of `reg_field_bits` each; whatever
/// remains is immediate space.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct IsaGeometry {
    /// Total bits per instruction word.
    pub word_bits: u32,
    /// Bits spent on opcode/condition encoding.
    pub opcode_bits: u32,
    /// Bits per register field (`RegW` under direct encoding, `DiffW`
    /// under differential encoding).
    pub reg_field_bits: u32,
    /// Maximum register fields one instruction may carry.
    pub max_reg_fields: u32,
    /// Immediates representable in the remaining bits of a one-word
    /// instruction; wider immediates need an extension word.
    pub short_imm_bits: u32,
}

impl IsaGeometry {
    /// The LEAF16 embedded ISA with `field_bits`-wide register fields.
    ///
    /// With 3-bit fields this mirrors THUMB: 16-bit words, three register
    /// fields maximum, 8-bit short immediates.
    pub fn leaf16(field_bits: u32) -> Self {
        let g = IsaGeometry {
            word_bits: 16,
            opcode_bits: 6,
            reg_field_bits: field_bits,
            max_reg_fields: 3,
            short_imm_bits: 8,
        };
        assert!(g.fits(), "LEAF16 cannot fit {field_bits}-bit fields");
        g
    }

    /// The LEAF32 VLIW ISA with `field_bits`-wide register fields.
    pub fn leaf32(field_bits: u32) -> Self {
        let g = IsaGeometry {
            word_bits: 32,
            opcode_bits: 10,
            reg_field_bits: field_bits,
            max_reg_fields: 3,
            short_imm_bits: 16,
        };
        assert!(g.fits(), "LEAF32 cannot fit {field_bits}-bit fields");
        g
    }

    /// Do `max_reg_fields` fields plus the opcode fit in one word?
    pub fn fits(&self) -> bool {
        self.opcode_bits + self.max_reg_fields * self.reg_field_bits <= self.word_bits
    }

    /// Bits of register-field encoding in an instruction with `n` fields.
    pub fn reg_bits(&self, n: u32) -> u32 {
        assert!(n <= self.max_reg_fields, "{n} fields exceed the format");
        n * self.reg_field_bits
    }

    /// Can an immediate of value `imm` ride in the base word?
    pub fn imm_fits_short(&self, imm: i32) -> bool {
        let half = 1i64 << (self.short_imm_bits - 1);
        (imm as i64) >= -half && (imm as i64) < half
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf16_thumb_like() {
        let g = IsaGeometry::leaf16(3);
        assert_eq!(g.word_bits, 16);
        assert!(g.fits());
        assert_eq!(g.reg_bits(3), 9);
        assert_eq!(g.reg_bits(0), 0);
    }

    #[test]
    fn leaf32_vliw() {
        let g = IsaGeometry::leaf32(5);
        assert!(g.fits());
        assert_eq!(g.reg_bits(3), 15);
        // 6-bit fields (direct encoding of 64 registers) also fit in 32.
        let g64 = IsaGeometry::leaf32(6);
        assert!(g64.fits());
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn leaf16_rejects_wide_fields() {
        // 4-bit fields x3 + 6 opcode bits = 18 > 16.
        let _ = IsaGeometry::leaf16(4);
    }

    #[test]
    fn short_imm_range() {
        let g = IsaGeometry::leaf16(3);
        assert!(g.imm_fits_short(127));
        assert!(g.imm_fits_short(-128));
        assert!(!g.imm_fits_short(128));
        assert!(!g.imm_fits_short(-129));
    }

    #[test]
    #[should_panic(expected = "exceed the format")]
    fn too_many_fields_rejected() {
        IsaGeometry::leaf16(3).reg_bits(4);
    }
}
