//! Code-size accounting over IR functions.

use crate::geometry::IsaGeometry;
use dra_ir::{Function, Inst, Program};

/// Number of instruction words `inst` occupies under `geom`.
///
/// Defined as the length of the bit-exact encoding produced by
/// [`crate::asm::encode_inst`] (with placeholder field codes — word count
/// depends only on field *arity* and immediate magnitudes), expressed in
/// `geom.word_bits`-sized words. The size accounting and the assembler can
/// therefore never disagree.
pub fn words_for_inst(inst: &Inst, geom: &IsaGeometry) -> u32 {
    let arity = inst.accesses().len().min(geom.max_reg_fields as usize);
    let fields = vec![0u16; arity];
    let halves = crate::asm::encode_inst(inst, geom, &fields)
        .expect("placeholder codes always fit")
        .len() as u32;
    // encode_inst emits u16 halves; convert to architectural words.
    halves * 16 / geom.word_bits
}

/// Code size of one function, in bits.
pub fn function_size_bits(f: &Function, geom: &IsaGeometry) -> u64 {
    f.iter_insts()
        .map(|i| words_for_inst(i, geom) as u64 * geom.word_bits as u64)
        .sum()
}

/// Code size of a whole program, in bits.
pub fn code_size_bits(p: &Program, geom: &IsaGeometry) -> u64 {
    p.funcs.iter().map(|f| function_size_bits(f, geom)).sum()
}

/// Fraction of the program's bits spent on register fields.
///
/// The paper motivates differential encoding with this number ("register
/// field takes about 28% of the Alpha binary and 25% of the ARM binary",
/// Section 1).
pub fn register_field_fraction(p: &Program, geom: &IsaGeometry) -> f64 {
    let total = code_size_bits(p, geom);
    if total == 0 {
        return 0.0;
    }
    let reg_bits: u64 = p
        .funcs
        .iter()
        .flat_map(|f| f.iter_insts())
        .map(|i| {
            let fields = (i.accesses().len() as u32).min(geom.max_reg_fields);
            geom.reg_bits(fields) as u64
        })
        .sum();
    reg_bits as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra_ir::{BinOp, FunctionBuilder, Program};

    fn geom() -> IsaGeometry {
        IsaGeometry::leaf16(3)
    }

    #[test]
    fn one_word_per_plain_inst() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        let y = b.new_vreg();
        b.bin(BinOp::Add, y, x.into(), x.into());
        b.ret(None);
        let f = b.finish();
        assert_eq!(function_size_bits(&f, &geom()), 32);
    }

    #[test]
    fn long_immediates_take_extension_words() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        b.mov_imm(x, 5); // fits the 7-bit in-word slot
        b.mov_imm(x, 1000); // needs two 16-bit extension words
        b.ret(None);
        let f = b.finish();
        assert_eq!(function_size_bits(&f, &geom()), (1 + 3 + 1) * 16);
    }

    #[test]
    fn long_offsets_take_extension_words() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        let a = b.new_vreg();
        b.load(x, a.into(), 48); // word-scaled: 48/8 = 6 fits 4 bits
        b.load(x, a.into(), 4096); // scaled 512: two extension words
        b.ret(None);
        let f = b.finish();
        assert_eq!(function_size_bits(&f, &geom()), (1 + 3 + 1) * 16);
    }

    #[test]
    fn set_last_reg_costs_one_word() {
        let i = Inst::SetLastReg {
            class: dra_ir::RegClass::Int,
            value: 3,
            delay: 0,
        };
        assert_eq!(words_for_inst(&i, &geom()), 1);
    }

    #[test]
    fn register_field_fraction_is_substantial() {
        // An ALU-heavy function: 3 fields x 3 bits of 16 ≈ 56%.
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        let y = b.new_vreg();
        for _ in 0..10 {
            b.bin(BinOp::Add, y, x.into(), y.into());
        }
        b.ret(None);
        let p = Program::single(b.finish());
        let frac = register_field_fraction(&p, &geom());
        assert!(frac > 0.4 && frac < 0.6, "fraction {frac}");
    }

    #[test]
    fn empty_program_fraction_zero() {
        let p = Program::default();
        assert_eq!(register_field_fraction(&p, &geom()), 0.0);
        assert_eq!(code_size_bits(&p, &geom()), 0);
    }
}
