//! Natural-loop detection and static execution-frequency estimation.
//!
//! The paper weights adjacency-graph edges by estimated execution frequency
//! ("profile information could be incorporated", Section 4); absent a
//! profile it relies on static estimation. We use the classic heuristic:
//! each loop multiplies the frequency of its blocks by a constant
//! ([`LOOP_FREQ_MULTIPLIER`]).

use crate::block::BlockId;
use crate::dom::Dominators;
use crate::function::Function;
use std::collections::BTreeSet;

/// Assumed iteration count of a loop for static frequency estimation.
pub const LOOP_FREQ_MULTIPLIER: f64 = 10.0;

/// A natural loop: header plus body (header included).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NaturalLoop {
    /// Loop header (target of the back edge).
    pub header: BlockId,
    /// All blocks of the loop, header included.
    pub blocks: BTreeSet<BlockId>,
}

impl NaturalLoop {
    /// Number of blocks in the loop.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if the loop has no blocks (never produced by the finder).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }
}

/// Find all natural loops of `f` (one per back edge, merged per header).
pub fn find_loops(f: &Function) -> Vec<NaturalLoop> {
    let dom = Dominators::compute(f);
    let mut by_header: Vec<(BlockId, BTreeSet<BlockId>)> = Vec::new();
    for (b, blk) in f.iter_blocks() {
        for &s in &blk.succs {
            if dom.dominates(s, b) {
                // Back edge b -> s; collect the natural loop of s.
                let body = natural_loop_body(f, s, b);
                match by_header.iter_mut().find(|(h, _)| *h == s) {
                    Some((_, set)) => set.extend(body),
                    None => by_header.push((s, body)),
                }
            }
        }
    }
    by_header
        .into_iter()
        .map(|(header, blocks)| NaturalLoop { header, blocks })
        .collect()
}

/// Blocks of the natural loop with header `h` and back edge from `tail`.
fn natural_loop_body(f: &Function, h: BlockId, tail: BlockId) -> BTreeSet<BlockId> {
    let mut body: BTreeSet<BlockId> = BTreeSet::new();
    body.insert(h);
    let mut stack = vec![tail];
    while let Some(b) = stack.pop() {
        if body.insert(b) {
            for &p in &f.block(b).preds {
                stack.push(p);
            }
        }
    }
    body
}

/// Loop-nesting depth of every block (0 = not in any loop).
pub fn loop_depths(f: &Function) -> Vec<u32> {
    let loops = find_loops(f);
    let mut depth = vec![0u32; f.num_blocks()];
    for l in &loops {
        for &b in &l.blocks {
            depth[b.index()] += 1;
        }
    }
    depth
}

/// Assign static frequency estimates to every block of `f`:
/// `freq = LOOP_FREQ_MULTIPLIER ^ depth`.
pub fn assign_static_frequencies(f: &mut Function) {
    let depths = loop_depths(f);
    for (i, d) in depths.iter().enumerate() {
        f.blocks[i].freq = LOOP_FREQ_MULTIPLIER.powi(*d as i32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, Cond};

    /// Two nested counted loops.
    fn nested() -> (Function, BlockId, BlockId) {
        let mut b = FunctionBuilder::new("f");
        let i = b.new_vreg();
        let j = b.new_vreg();
        let n = b.new_vreg();
        b.mov_imm(i, 0);
        b.mov_imm(n, 4);
        let oh = b.new_block(); // outer header
        let ob = b.new_block(); // outer body = inner init
        let ih = b.new_block(); // inner header
        let ib = b.new_block(); // inner body
        let ol = b.new_block(); // outer latch
        let ex = b.new_block();
        b.br(oh);
        b.switch_to(oh);
        b.cond_br(Cond::Lt, i.into(), n.into(), ob, ex);
        b.switch_to(ob);
        b.mov_imm(j, 0);
        b.br(ih);
        b.switch_to(ih);
        b.cond_br(Cond::Lt, j.into(), n.into(), ib, ol);
        b.switch_to(ib);
        b.bin_imm(BinOp::Add, j, j.into(), 1);
        b.br(ih);
        b.switch_to(ol);
        b.bin_imm(BinOp::Add, i, i.into(), 1);
        b.br(oh);
        b.switch_to(ex);
        b.ret(None);
        (b.finish(), oh, ih)
    }

    #[test]
    fn finds_both_loops() {
        let (f, oh, ih) = nested();
        let loops = find_loops(&f);
        assert_eq!(loops.len(), 2);
        let outer = loops.iter().find(|l| l.header == oh).expect("outer loop");
        let inner = loops.iter().find(|l| l.header == ih).expect("inner loop");
        assert!(outer.len() > inner.len());
        for &b in &inner.blocks {
            assert!(outer.contains(b), "inner loop nested in outer");
        }
        assert!(!inner.is_empty());
    }

    #[test]
    fn depths_reflect_nesting() {
        let (f, oh, ih) = nested();
        let d = loop_depths(&f);
        assert_eq!(d[0], 0, "entry outside loops");
        assert_eq!(d[oh.index()], 1);
        assert_eq!(d[ih.index()], 2);
    }

    #[test]
    fn frequencies_scale_with_depth() {
        let (mut f, oh, ih) = nested();
        assign_static_frequencies(&mut f);
        assert_eq!(f.block(crate::block::BlockId(0)).freq, 1.0);
        assert_eq!(f.block(oh).freq, 10.0);
        assert_eq!(f.block(ih).freq, 100.0);
    }

    #[test]
    fn acyclic_function_has_no_loops() {
        let mut b = FunctionBuilder::new("f");
        b.ret(None);
        let f = b.finish();
        assert!(find_loops(&f).is_empty());
        assert_eq!(loop_depths(&f), vec![0]);
    }

    #[test]
    fn self_loop_detected() {
        let mut b = FunctionBuilder::new("f");
        let c = b.new_vreg();
        b.mov_imm(c, 0);
        let l = b.new_block();
        let ex = b.new_block();
        b.br(l);
        b.switch_to(l);
        b.cond_br(Cond::Eq, c.into(), c.into(), l, ex);
        b.switch_to(ex);
        b.ret(None);
        let f = b.finish();
        let loops = find_loops(&f);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].header, l);
        assert_eq!(loops[0].len(), 1);
    }
}
