//! Structural validation of functions and programs.
//!
//! Validation failures are programming errors in passes, so the checks
//! return a descriptive [`ValidateError`] that tests and the end-to-end
//! driver surface immediately.

use crate::block::BlockId;
use crate::function::{Function, Program};
use std::error::Error;
use std::fmt;

/// A structural defect found by [`validate_function`] / [`validate_program`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidateError {
    /// A reachable block does not end in a terminator.
    MissingTerminator {
        /// Function name.
        func: String,
        /// Offending block.
        block: BlockId,
    },
    /// A terminator appears before the end of a block.
    EarlyTerminator {
        /// Function name.
        func: String,
        /// Offending block.
        block: BlockId,
        /// Index of the stray terminator.
        index: usize,
    },
    /// A branch names a block that does not exist.
    BadBranchTarget {
        /// Function name.
        func: String,
        /// Offending block.
        block: BlockId,
        /// The missing target.
        target: BlockId,
    },
    /// An instruction references a virtual register `>= vreg_count`.
    BadVReg {
        /// Function name.
        func: String,
        /// Offending block.
        block: BlockId,
        /// Raw register index.
        vreg: u32,
    },
    /// A call names a function index outside the program.
    BadCallee {
        /// Function name.
        func: String,
        /// The missing callee index.
        callee: u32,
    },
    /// The program's entry index names no function (or there are none).
    BadEntry {
        /// The entry index.
        entry: u32,
        /// Number of functions in the program.
        funcs: usize,
    },
    /// Cached CFG edges disagree with the terminators.
    StaleCfg {
        /// Function name.
        func: String,
        /// Block whose edges are stale.
        block: BlockId,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::MissingTerminator { func, block } => {
                write!(f, "function `{func}`: block {block} lacks a terminator")
            }
            ValidateError::EarlyTerminator { func, block, index } => write!(
                f,
                "function `{func}`: terminator at non-final position {index} of {block}"
            ),
            ValidateError::BadBranchTarget { func, block, target } => write!(
                f,
                "function `{func}`: {block} branches to nonexistent {target}"
            ),
            ValidateError::BadVReg { func, block, vreg } => write!(
                f,
                "function `{func}`: {block} references out-of-range v{vreg}"
            ),
            ValidateError::BadCallee { func, callee } => {
                write!(f, "function `{func}`: call to nonexistent f{callee}")
            }
            ValidateError::BadEntry { entry, funcs } => {
                write!(f, "program entry f{entry} out of range ({funcs} functions)")
            }
            ValidateError::StaleCfg { func, block } => {
                write!(f, "function `{func}`: cached CFG edges of {block} are stale")
            }
        }
    }
}

impl Error for ValidateError {}

/// Check one function in isolation (callee indices unchecked).
///
/// # Errors
///
/// Returns the first structural defect found.
pub fn validate_function(f: &Function) -> Result<(), ValidateError> {
    let nb = f.num_blocks();
    for (b, blk) in f.iter_blocks() {
        for (i, inst) in blk.insts.iter().enumerate() {
            let last = i + 1 == blk.insts.len();
            if inst.is_terminator() && !last {
                return Err(ValidateError::EarlyTerminator {
                    func: f.name.clone(),
                    block: b,
                    index: i,
                });
            }
            for t in inst.branch_targets() {
                if t.index() >= nb {
                    return Err(ValidateError::BadBranchTarget {
                        func: f.name.clone(),
                        block: b,
                        target: t,
                    });
                }
            }
            for r in inst.accesses() {
                if let Some(v) = r.as_virt() {
                    if v.0 >= f.vreg_count {
                        return Err(ValidateError::BadVReg {
                            func: f.name.clone(),
                            block: b,
                            vreg: v.0,
                        });
                    }
                }
            }
        }
        // Cached edges must match a fresh recomputation.
        let mut expect = Vec::new();
        if let Some(t) = blk.insts.last() {
            expect = t.branch_targets();
        }
        if blk.succs != expect {
            return Err(ValidateError::StaleCfg {
                func: f.name.clone(),
                block: b,
            });
        }
    }
    for b in f.reverse_postorder() {
        if f.block(b).terminator().is_none() {
            return Err(ValidateError::MissingTerminator {
                func: f.name.clone(),
                block: b,
            });
        }
    }
    Ok(())
}

/// Check a whole program, including call-target resolution.
///
/// # Errors
///
/// Returns the first structural defect found in any function.
pub fn validate_program(p: &Program) -> Result<(), ValidateError> {
    if p.entry as usize >= p.funcs.len() {
        return Err(ValidateError::BadEntry {
            entry: p.entry,
            funcs: p.funcs.len(),
        });
    }
    for f in &p.funcs {
        validate_function(f)?;
        for inst in f.iter_insts() {
            if let crate::inst::Inst::Call { callee, .. } = inst {
                if *callee as usize >= p.funcs.len() {
                    return Err(ValidateError::BadCallee {
                        func: f.name.clone(),
                        callee: *callee,
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::Inst;
    use crate::reg::{Reg, VReg};

    fn good() -> Function {
        let mut b = FunctionBuilder::new("g");
        let x = b.new_vreg();
        b.mov_imm(x, 1);
        b.ret(Some(x.into()));
        b.finish()
    }

    #[test]
    fn valid_function_passes() {
        assert_eq!(validate_function(&good()), Ok(()));
    }

    #[test]
    fn early_terminator_caught() {
        let mut f = good();
        f.blocks[0]
            .insts
            .insert(0, Inst::Ret { value: None });
        f.recompute_cfg();
        assert!(matches!(
            validate_function(&f),
            Err(ValidateError::EarlyTerminator { .. })
        ));
    }

    #[test]
    fn bad_branch_target_caught() {
        let mut f = good();
        *f.blocks[0].insts.last_mut().unwrap() = Inst::Br {
            target: BlockId(99),
        };
        // recompute_cfg would (rightly) panic on the bogus target; the
        // validator must diagnose it instead.
        assert!(matches!(
            validate_function(&f),
            Err(ValidateError::BadBranchTarget { .. })
        ));
    }

    #[test]
    fn out_of_range_vreg_caught() {
        let mut f = good();
        f.blocks[0].insts[0] = Inst::MovImm {
            dst: Reg::Virt(VReg(1000)),
            imm: 0,
        };
        assert!(matches!(
            validate_function(&f),
            Err(ValidateError::BadVReg { vreg: 1000, .. })
        ));
    }

    #[test]
    fn stale_cfg_caught() {
        let mut f = good();
        f.blocks[0].succs.push(BlockId(0)); // lie about an edge
        assert!(matches!(
            validate_function(&f),
            Err(ValidateError::StaleCfg { .. })
        ));
    }

    #[test]
    fn bad_callee_caught() {
        let mut b = FunctionBuilder::new("caller");
        b.call(7, vec![], None);
        b.ret(None);
        let p = Program::single(b.finish());
        assert!(matches!(
            validate_program(&p),
            Err(ValidateError::BadCallee { callee: 7, .. })
        ));
    }

    #[test]
    fn good_program_passes() {
        let p = Program::single(good());
        assert_eq!(validate_program(&p), Ok(()));
    }

    #[test]
    fn errors_display() {
        let e = ValidateError::MissingTerminator {
            func: "f".into(),
            block: BlockId(2),
        };
        assert!(format!("{e}").contains("lacks a terminator"));
    }
}
