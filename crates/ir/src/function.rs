//! Functions and whole programs.

use crate::block::{BasicBlock, BlockId};
use crate::inst::Inst;
use crate::reg::{Reg, RegClass, VReg};
use std::fmt;

/// A function: a CFG of basic blocks over a pool of virtual registers.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    /// Human-readable name.
    pub name: String,
    /// Basic blocks, indexed by [`BlockId`].
    pub blocks: Vec<BasicBlock>,
    /// Entry block (always `bb0` for builder-produced functions).
    pub entry: BlockId,
    /// Number of virtual registers ever created; `VReg(i)` for `i <
    /// vreg_count` are valid.
    pub vreg_count: u32,
    /// Number of spill slots allocated in the frame.
    pub spill_slots: u32,
    /// Register class of each virtual register (dense, `vreg_count` long).
    pub vreg_classes: Vec<RegClass>,
    /// Formal parameters, read from these virtual registers at entry.
    pub params: Vec<VReg>,
}

impl Function {
    /// An empty function with a single unsealed entry block.
    pub fn new(name: impl Into<String>) -> Self {
        Function {
            name: name.into(),
            blocks: vec![BasicBlock::new()],
            entry: BlockId(0),
            vreg_count: 0,
            spill_slots: 0,
            vreg_classes: Vec::new(),
            params: Vec::new(),
        }
    }

    /// Number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total instruction count across all blocks.
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Shared access to a block.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block.
    pub fn block_mut(&mut self, id: BlockId) -> &mut BasicBlock {
        &mut self.blocks[id.index()]
    }

    /// Iterate over `(BlockId, &BasicBlock)` in index order (which is also
    /// layout order for code-size purposes).
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Create a fresh virtual register of the integer class.
    pub fn new_vreg(&mut self) -> VReg {
        self.new_vreg_of(RegClass::Int)
    }

    /// Create a fresh virtual register of a given class.
    pub fn new_vreg_of(&mut self, class: RegClass) -> VReg {
        let v = VReg(self.vreg_count);
        self.vreg_count += 1;
        self.vreg_classes.push(class);
        v
    }

    /// The class of a virtual register.
    pub fn vreg_class(&self, v: VReg) -> RegClass {
        self.vreg_classes[v.index()]
    }

    /// The register class of any operand, virtual or physical.
    ///
    /// This is the single source of truth for the convention that a bare
    /// [`crate::PReg`] belongs to the **integer** class: the reproduction
    /// keeps the integer and float register files disjoint with class-local
    /// numbering, and float code is exercised through virtual registers.
    /// Every class filter (graph construction, encoding, remapping) must go
    /// through this method so they cannot diverge.
    pub fn class_of(&self, r: Reg) -> RegClass {
        match r {
            Reg::Virt(v) => self.vreg_class(v),
            Reg::Phys(_) => RegClass::Int,
        }
    }

    /// Recompute `succs`/`preds` for every block from the terminators.
    ///
    /// Must be called after any transformation that adds, removes, or
    /// retargets terminators. The builder calls it automatically.
    pub fn recompute_cfg(&mut self) {
        let n = self.blocks.len();
        let mut succs: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for (i, b) in self.blocks.iter().enumerate() {
            if let Some(t) = b.insts.last() {
                for tgt in t.branch_targets() {
                    succs[i].push(tgt);
                    preds[tgt.index()].push(BlockId(i as u32));
                }
            }
        }
        for (i, b) in self.blocks.iter_mut().enumerate() {
            b.succs = std::mem::take(&mut succs[i]);
            b.preds = std::mem::take(&mut preds[i]);
        }
    }

    /// Blocks reachable from the entry, in reverse postorder.
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let n = self.blocks.len();
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        // Iterative DFS with an explicit "children pending" state.
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry, 0)];
        visited[self.entry.index()] = true;
        while let Some(top) = stack.len().checked_sub(1) {
            let (b, next) = stack[top];
            let succs = &self.blocks[b.index()].succs;
            if next < succs.len() {
                stack[top].1 += 1;
                let s = succs[next];
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Apply `f` to every register operand of every instruction.
    pub fn map_all_regs(&mut self, mut f: impl FnMut(Reg) -> Reg) {
        for b in &mut self.blocks {
            for i in &mut b.insts {
                i.map_regs(&mut f);
            }
        }
    }

    /// Iterate over all instructions in layout order.
    pub fn iter_insts(&self) -> impl Iterator<Item = &Inst> {
        self.blocks.iter().flat_map(|b| b.insts.iter())
    }

    /// Count instructions satisfying a predicate (spills, moves, …).
    pub fn count_insts(&self, pred: impl Fn(&Inst) -> bool) -> usize {
        self.iter_insts().filter(|i| pred(i)).count()
    }

    /// True once every register operand is physical (post-allocation).
    pub fn is_fully_physical(&self) -> bool {
        self.iter_insts()
            .all(|i| i.accesses().iter().all(|r| !r.is_virt()))
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fn {}({:?}):", self.name, self.params)?;
        for (id, b) in self.iter_blocks() {
            writeln!(f, "{id}:  ; freq={:.1} preds={:?}", b.freq, b.preds)?;
            for i in &b.insts {
                writeln!(f, "    {i}")?;
            }
        }
        Ok(())
    }
}

/// A whole program: several functions plus a designated entry function.
///
/// Calls name callees by index into [`Program::funcs`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    /// The functions of the program.
    pub funcs: Vec<Function>,
    /// Index of the entry function in [`Program::funcs`].
    pub entry: u32,
}

impl Program {
    /// A program with a single entry function.
    pub fn single(func: Function) -> Self {
        Program {
            funcs: vec![func],
            entry: 0,
        }
    }

    /// The entry function.
    pub fn entry_func(&self) -> &Function {
        &self.funcs[self.entry as usize]
    }

    /// Total instruction count across every function.
    pub fn num_insts(&self) -> usize {
        self.funcs.iter().map(|f| f.num_insts()).sum()
    }

    /// Count instructions satisfying a predicate across all functions.
    pub fn count_insts(&self, pred: impl Fn(&Inst) -> bool + Copy) -> usize {
        self.funcs.iter().map(|f| f.count_insts(pred)).sum()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, func) in self.funcs.iter().enumerate() {
            writeln!(f, "; f{i}")?;
            write!(f, "{func}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BinOp, Cond};

    fn diamond() -> Function {
        // bb0 -> bb1, bb2; bb1 -> bb3; bb2 -> bb3; bb3 -> ret
        let mut f = Function::new("diamond");
        let a = f.new_vreg();
        let b = f.new_vreg();
        f.blocks = vec![
            BasicBlock::new(),
            BasicBlock::new(),
            BasicBlock::new(),
            BasicBlock::new(),
        ];
        f.blocks[0].insts = vec![
            Inst::MovImm { dst: a.into(), imm: 1 },
            Inst::CondBr {
                cond: Cond::Eq,
                lhs: a.into(),
                rhs: a.into(),
                then_bb: BlockId(1),
                else_bb: BlockId(2),
            },
        ];
        f.blocks[1].insts = vec![
            Inst::BinImm {
                op: BinOp::Add,
                dst: b.into(),
                src: a.into(),
                imm: 1,
            },
            Inst::Br { target: BlockId(3) },
        ];
        f.blocks[2].insts = vec![
            Inst::BinImm {
                op: BinOp::Sub,
                dst: b.into(),
                src: a.into(),
                imm: 1,
            },
            Inst::Br { target: BlockId(3) },
        ];
        f.blocks[3].insts = vec![Inst::Ret {
            value: Some(b.into()),
        }];
        f.recompute_cfg();
        f
    }

    #[test]
    fn cfg_recompute_builds_edges() {
        let f = diamond();
        assert_eq!(f.block(BlockId(0)).succs, vec![BlockId(1), BlockId(2)]);
        assert_eq!(f.block(BlockId(3)).preds, vec![BlockId(1), BlockId(2)]);
        assert!(f.block(BlockId(3)).succs.is_empty());
        assert!(f.block(BlockId(0)).preds.is_empty());
    }

    #[test]
    fn reverse_postorder_visits_entry_first_and_join_last() {
        let f = diamond();
        let rpo = f.reverse_postorder();
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo[3], BlockId(3));
    }

    #[test]
    fn rpo_skips_unreachable_blocks() {
        let mut f = diamond();
        f.blocks.push(BasicBlock::new()); // unreachable bb4
        f.blocks[4].insts.push(Inst::Ret { value: None });
        f.recompute_cfg();
        let rpo = f.reverse_postorder();
        assert_eq!(rpo.len(), 4);
        assert!(!rpo.contains(&BlockId(4)));
    }

    #[test]
    fn inst_counting() {
        let f = diamond();
        assert_eq!(f.num_insts(), 7);
        assert_eq!(f.count_insts(|i| i.is_terminator()), 4);
        assert!(!f.is_fully_physical());
    }

    #[test]
    fn program_aggregates() {
        let p = Program::single(diamond());
        assert_eq!(p.num_insts(), 7);
        assert_eq!(p.entry_func().name, "diamond");
        assert_eq!(p.count_insts(|i| i.is_terminator()), 4);
    }

    #[test]
    fn display_contains_blocks() {
        let f = diamond();
        let s = format!("{f}");
        assert!(s.contains("bb0"));
        assert!(s.contains("ret"));
    }
}
