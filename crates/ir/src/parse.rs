//! Parsing the textual IR form back into [`Function`]s.
//!
//! The grammar is exactly what [`Function`]'s `Display` emits, so
//! `parse_function(&f.to_string())` round-trips. Handy for writing tests
//! and reduced repros by hand, and for diffing compiler stages as text.
//!
//! ```
//! use dra_ir::parse::parse_function;
//!
//! let f = parse_function(
//!     "fn double([v0]):\n\
//!      bb0:\n\
//!          v0 = param 0\n\
//!          v1 = add v0, v0\n\
//!          ret v1\n",
//! )?;
//! assert_eq!(f.name, "double");
//! assert_eq!(f.num_insts(), 3);
//! # Ok::<(), dra_ir::parse::ParseError>(())
//! ```

use crate::block::{BasicBlock, BlockId};
use crate::function::Function;
use crate::inst::{BinOp, Cond, Inst, SpillSlot};
use crate::reg::{PReg, Reg, VReg};
use std::error::Error;
use std::fmt;

/// A parse failure with its line number (1-based).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending text.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

/// Cap on parsed entity ids (`bbN`, `vN`, `slotN`). Ids name slots in
/// dense arrays — `blocks`, `vreg_classes`, spill frames — so hostile text
/// like `br bb4000000000` must be rejected here, not answered with a
/// multi-gigabyte allocation (or an index overflow) downstream.
const MAX_ID: u32 = 1 << 20;

fn parse_id(s: &str) -> Option<u32> {
    let n: u32 = s.parse().ok()?;
    (n <= MAX_ID).then_some(n)
}

/// Parse one function from its textual form.
///
/// # Errors
///
/// [`ParseError`] with the offending line on any syntax problem. The
/// parsed function is CFG-recomputed but not otherwise validated; run
/// [`crate::validate::validate_function`] for structural checks.
pub fn parse_function(text: &str) -> Result<Function, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l))
        // Leading blank/comment lines (e.g. `Program`'s `; fN` separators)
        // precede the header.
        .skip_while(|(_, l)| {
            let t = l.trim();
            t.is_empty() || t.starts_with(';')
        });

    // Header: `fn name([v0, v1]):` (register classes are not part of the
    // textual form; every register parses as the integer class).
    let (hline, header) = lines.next().ok_or(ParseError {
        line: 0,
        message: "empty input".into(),
    })?;
    let header = header.trim();
    let rest = header
        .strip_prefix("fn ")
        .ok_or(ParseError {
            line: hline,
            message: "expected `fn name([params]):`".into(),
        })?;
    let open = rest.find('(').ok_or(ParseError {
        line: hline,
        message: "missing parameter list".into(),
    })?;
    let name = rest[..open].trim().to_string();
    let close = rest.rfind(')').ok_or(ParseError {
        line: hline,
        message: "missing `)`".into(),
    })?;
    if close < open + 1 {
        // `)` before `(`, as in `fn f)(:` — slicing would panic.
        return err(hline, "`)` precedes `(` in the parameter list");
    }
    let params_src = rest[open + 1..close].trim_matches(['[', ']']);
    let mut f = Function::new(name);
    let mut max_vreg: i64 = -1;
    for p in params_src.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let v = parse_vreg(p, hline)?;
        f.params.push(v);
        max_vreg = max_vreg.max(v.0 as i64);
    }

    let mut current: Option<usize> = None;
    let mut blocks: Vec<BasicBlock> = Vec::new();
    let mut branch_refs: Vec<(usize, BlockId)> = Vec::new();

    for (ln, raw) in lines {
        let line = raw.split(';').next().unwrap_or("").trim_end();
        let trimmed = line.trim();
        if trimmed.is_empty() {
            // Block annotations may live entirely in the comment.
            if let (Some(bi), Some(comment)) = (current, raw.split(';').nth(1)) {
                if let Some(freq) = parse_freq(comment) {
                    blocks[bi].freq = freq;
                }
            }
            continue;
        }
        if let Some(label) = trimmed.strip_suffix(':') {
            let id = parse_block(label, ln)?;
            while blocks.len() <= id.index() {
                blocks.push(BasicBlock::new());
            }
            current = Some(id.index());
            if let Some(comment) = raw.split(';').nth(1) {
                if let Some(freq) = parse_freq(comment) {
                    blocks[id.index()].freq = freq;
                }
            }
            continue;
        }
        let Some(bi) = current else {
            return err(ln, "instruction before any block label");
        };
        let inst = parse_inst(trimmed, ln)?;
        for t in inst.branch_targets() {
            branch_refs.push((ln, t));
        }
        for r in inst.accesses() {
            if let Reg::Virt(v) = r {
                max_vreg = max_vreg.max(v.0 as i64);
            }
        }
        if let Inst::SpillLoad { slot, .. } | Inst::SpillStore { slot, .. } = &inst {
            f.spill_slots = f.spill_slots.max(slot.0 + 1);
        }
        blocks[bi].insts.push(inst);
    }

    if blocks.is_empty() {
        blocks.push(BasicBlock::new());
    }
    // Every branch must land on a declared label: `recompute_cfg` indexes
    // `preds`/`succs` by target, so a dangling `br bb99` would panic there
    // instead of erroring here.
    for (ln, t) in branch_refs {
        if t.index() >= blocks.len() {
            return err(
                ln,
                format!("branch target {t} does not exist ({} blocks)", blocks.len()),
            );
        }
    }
    f.blocks = blocks;
    f.vreg_count = (max_vreg + 1) as u32;
    f.vreg_classes = vec![crate::reg::RegClass::Int; f.vreg_count as usize];
    f.recompute_cfg();
    Ok(f)
}

fn parse_freq(comment: &str) -> Option<f64> {
    let idx = comment.find("freq=")?;
    let tail = &comment[idx + 5..];
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn parse_vreg(s: &str, line: usize) -> Result<VReg, ParseError> {
    match s.strip_prefix('v').and_then(parse_id) {
        Some(n) => Ok(VReg(n)),
        None => err(line, format!("expected virtual register, got `{s}`")),
    }
}

fn parse_reg(s: &str, line: usize) -> Result<Reg, ParseError> {
    let s = s.trim();
    if let Some(n) = s.strip_prefix('v').and_then(parse_id) {
        return Ok(Reg::Virt(VReg(n)));
    }
    if let Some(n) = s.strip_prefix('r').and_then(|n| n.parse().ok()) {
        return Ok(Reg::Phys(PReg(n)));
    }
    err(line, format!("expected register, got `{s}`"))
}

fn parse_block(s: &str, line: usize) -> Result<BlockId, ParseError> {
    match s.trim().strip_prefix("bb").and_then(parse_id) {
        Some(n) => Ok(BlockId(n)),
        None => err(line, format!("expected block label, got `{s}`")),
    }
}

fn parse_imm(s: &str, line: usize) -> Result<i32, ParseError> {
    match s.trim().strip_prefix('#').and_then(|n| n.parse().ok()) {
        Some(n) => Ok(n),
        None => err(line, format!("expected `#imm`, got `{s}`")),
    }
}

fn parse_binop(s: &str) -> Option<BinOp> {
    BinOp::ALL.iter().copied().find(|op| op.to_string() == s)
}

fn parse_cond(s: &str) -> Option<Cond> {
    Cond::ALL.iter().copied().find(|c| c.to_string() == s)
}

fn parse_mem_operand(s: &str, line: usize) -> Result<(Reg, i32), ParseError> {
    // `[base+offset]` where offset may be negative (`[v1+-8]`).
    let inner = s
        .trim()
        .strip_prefix('[')
        .and_then(|x| x.strip_suffix(']'))
        .ok_or(ParseError {
            line,
            message: format!("expected `[base+offset]`, got `{s}`"),
        })?;
    let plus = inner.find('+').ok_or(ParseError {
        line,
        message: format!("expected `base+offset` in `{s}`"),
    })?;
    let base = parse_reg(&inner[..plus], line)?;
    let off: i32 = inner[plus + 1..].trim().parse().map_err(|_| ParseError {
        line,
        message: format!("bad offset in `{s}`"),
    })?;
    Ok((base, off))
}

fn parse_slot(s: &str, line: usize) -> Result<SpillSlot, ParseError> {
    match s.trim().strip_prefix("slot").and_then(parse_id) {
        Some(n) => Ok(SpillSlot(n)),
        None => err(line, format!("expected `slotN`, got `{s}`")),
    }
}

fn parse_inst(s: &str, ln: usize) -> Result<Inst, ParseError> {
    // Forms without `=` first.
    if s == "nop" {
        return Ok(Inst::Nop);
    }
    if s == "ret" {
        return Ok(Inst::Ret { value: None });
    }
    if let Some(v) = s.strip_prefix("ret ") {
        return Ok(Inst::Ret {
            value: Some(parse_reg(v, ln)?),
        });
    }
    if let Some(rest) = s.strip_prefix("store ") {
        let (src, mem) = rest.split_once(',').ok_or(ParseError {
            line: ln,
            message: "store needs `src, [base+off]`".into(),
        })?;
        let (base, offset) = parse_mem_operand(mem, ln)?;
        return Ok(Inst::Store {
            src: parse_reg(src, ln)?,
            base,
            offset,
        });
    }
    if let Some(rest) = s.strip_prefix("spill ") {
        let (src, slot) = rest.split_once(',').ok_or(ParseError {
            line: ln,
            message: "spill needs `src, slotN`".into(),
        })?;
        return Ok(Inst::SpillStore {
            src: parse_reg(src, ln)?,
            slot: parse_slot(slot, ln)?,
        });
    }
    if let Some(rest) = s.strip_prefix("set_last_reg.") {
        // `set_last_reg.int(5, 1)`
        let open = rest.find('(').ok_or(ParseError {
            line: ln,
            message: "set_last_reg needs `(value, delay)`".into(),
        })?;
        let class = match &rest[..open] {
            "int" => crate::reg::RegClass::Int,
            "float" => crate::reg::RegClass::Float,
            other => return err(ln, format!("unknown register class `{other}`")),
        };
        let args = rest[open + 1..].trim_end_matches(')');
        let (v, d) = args.split_once(',').ok_or(ParseError {
            line: ln,
            message: "set_last_reg needs two arguments".into(),
        })?;
        let value = v.trim().parse().map_err(|_| ParseError {
            line: ln,
            message: "bad set_last_reg value".into(),
        })?;
        let delay = d.trim().parse().map_err(|_| ParseError {
            line: ln,
            message: "bad set_last_reg delay".into(),
        })?;
        return Ok(Inst::SetLastReg { class, value, delay });
    }
    if let Some(rest) = s.strip_prefix("br.") {
        // `br.lt v0, v1 -> bb1, bb2`
        let (cond_s, rest) = rest.split_once(' ').ok_or(ParseError {
            line: ln,
            message: "conditional branch needs operands".into(),
        })?;
        let cond = parse_cond(cond_s).ok_or(ParseError {
            line: ln,
            message: format!("unknown condition `{cond_s}`"),
        })?;
        let (ops, targets) = rest.split_once("->").ok_or(ParseError {
            line: ln,
            message: "conditional branch needs `-> bbT, bbE`".into(),
        })?;
        let (l, r) = ops.split_once(',').ok_or(ParseError {
            line: ln,
            message: "conditional branch needs two operands".into(),
        })?;
        let (tb, eb) = targets.split_once(',').ok_or(ParseError {
            line: ln,
            message: "conditional branch needs two targets".into(),
        })?;
        return Ok(Inst::CondBr {
            cond,
            lhs: parse_reg(l, ln)?,
            rhs: parse_reg(r, ln)?,
            then_bb: parse_block(tb, ln)?,
            else_bb: parse_block(eb, ln)?,
        });
    }
    if let Some(t) = s.strip_prefix("br ") {
        return Ok(Inst::Br {
            target: parse_block(t, ln)?,
        });
    }
    if let Some(rest) = s.strip_prefix("call f") {
        return parse_call(rest, None, ln);
    }

    // `dst = …` forms.
    let (dst_s, rhs) = s.split_once('=').ok_or(ParseError {
        line: ln,
        message: format!("unrecognized instruction `{s}`"),
    })?;
    let dst = parse_reg(dst_s, ln)?;
    let rhs = rhs.trim();

    if let Some(rest) = rhs.strip_prefix("call f") {
        return parse_call(rest, Some(dst), ln);
    }
    if let Some(rest) = rhs.strip_prefix("mov ") {
        let rest = rest.trim();
        return Ok(if rest.starts_with('#') {
            Inst::MovImm {
                dst,
                imm: parse_imm(rest, ln)?,
            }
        } else {
            Inst::Mov {
                dst,
                src: parse_reg(rest, ln)?,
            }
        });
    }
    if let Some(rest) = rhs.strip_prefix("param ") {
        let index = rest.trim().parse().map_err(|_| ParseError {
            line: ln,
            message: "bad parameter index".into(),
        })?;
        return Ok(Inst::GetParam { dst, index });
    }
    if let Some(rest) = rhs.strip_prefix("load ") {
        let (base, offset) = parse_mem_operand(rest, ln)?;
        return Ok(Inst::Load { dst, base, offset });
    }
    if let Some(rest) = rhs.strip_prefix("reload ") {
        return Ok(Inst::SpillLoad {
            dst,
            slot: parse_slot(rest, ln)?,
        });
    }
    // `dst = op a, b` or `dst = op a, #imm`.
    let (op_s, args) = rhs.split_once(' ').ok_or(ParseError {
        line: ln,
        message: format!("unrecognized instruction `{s}`"),
    })?;
    let op = parse_binop(op_s).ok_or(ParseError {
        line: ln,
        message: format!("unknown operation `{op_s}`"),
    })?;
    let (a, b) = args.split_once(',').ok_or(ParseError {
        line: ln,
        message: "binary operation needs two operands".into(),
    })?;
    let lhs = parse_reg(a, ln)?;
    let b = b.trim();
    Ok(if b.starts_with('#') {
        Inst::BinImm {
            op,
            dst,
            src: lhs,
            imm: parse_imm(b, ln)?,
        }
    } else {
        Inst::Bin {
            op,
            dst,
            lhs,
            rhs: parse_reg(b, ln)?,
        }
    })
}

fn parse_call(rest: &str, ret: Option<Reg>, ln: usize) -> Result<Inst, ParseError> {
    // rest = `3(v1, v2)` (after the `call f` prefix).
    let open = rest.find('(').ok_or(ParseError {
        line: ln,
        message: "call needs an argument list".into(),
    })?;
    let callee = rest[..open].parse().map_err(|_| ParseError {
        line: ln,
        message: "bad callee index".into(),
    })?;
    let args_src = rest[open + 1..].trim_end_matches(')');
    let mut args = Vec::new();
    for a in args_src.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        args.push(parse_reg(a, ln)?);
    }
    Ok(Inst::Call { callee, args, ret })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::validate::validate_function;

    #[test]
    fn parses_the_doc_example() {
        let f = parse_function(
            "fn double([v0]):\nbb0:\n    v0 = param 0\n    v1 = add v0, v0\n    ret v1\n",
        )
        .unwrap();
        assert_eq!(f.name, "double");
        assert_eq!(f.params, vec![VReg(0)]);
        assert_eq!(f.vreg_count, 2);
        validate_function(&f).unwrap();
    }

    #[test]
    fn roundtrips_display_output() {
        let mut b = FunctionBuilder::new("rt");
        let p = b.new_param();
        let x = b.new_vreg();
        let base = b.new_vreg();
        b.mov_imm(base, 4096);
        b.bin_imm(BinOp::Mul, x, p.into(), 3);
        b.store(x.into(), base.into(), 8);
        b.load(x, base.into(), 8);
        b.spill_store(x.into(), SpillSlot(0));
        b.spill_load(x, SpillSlot(0));
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.cond_br(Cond::Ge, x.into(), p.into(), t, e);
        b.switch_to(t);
        b.push(Inst::SetLastReg {
            class: crate::reg::RegClass::Int,
            value: 7,
            delay: 2,
        });
        b.br(j);
        b.switch_to(e);
        b.push(Inst::Nop);
        b.br(j);
        b.switch_to(j);
        b.call(2, vec![x.into(), p.into()], Some(x));
        b.ret(Some(x.into()));
        let mut f = b.finish();
        f.spill_slots = 1;
        f.blocks[1].freq = 12.5;

        let text = f.to_string();
        let g = parse_function(&text).unwrap();
        assert_eq!(f, g, "display -> parse is the identity:\n{text}");
    }

    #[test]
    fn roundtrips_physical_registers() {
        let mut b = FunctionBuilder::new("phys");
        b.push(Inst::Bin {
            op: BinOp::Xor,
            dst: PReg(3).into(),
            lhs: PReg(0).into(),
            rhs: PReg(11).into(),
        });
        b.ret(None);
        let f = b.finish();
        let g = parse_function(&f.to_string()).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn block_frequency_comment_is_read() {
        let f = parse_function("fn f([]):\nbb0:  ; freq=99.5 preds=[]\n    ret\n").unwrap();
        assert_eq!(f.blocks[0].freq, 99.5);
    }

    #[test]
    fn reports_line_numbers() {
        let e = parse_function("fn f([]):\nbb0:\n    v0 = frobnicate v1, v2\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn rejects_instruction_before_label() {
        let e = parse_function("fn f([]):\n    ret\n").unwrap_err();
        assert!(e.message.contains("before any block"));
    }

    #[test]
    fn negative_offsets_and_immediates() {
        let f = parse_function(
            "fn f([]):\nbb0:\n    v0 = mov #-42\n    v1 = load [v0+-8]\n    ret v1\n",
        )
        .unwrap();
        match &f.blocks[0].insts[0] {
            Inst::MovImm { imm, .. } => assert_eq!(*imm, -42),
            other => panic!("{other}"),
        }
        match &f.blocks[0].insts[1] {
            Inst::Load { offset, .. } => assert_eq!(*offset, -8),
            other => panic!("{other}"),
        }
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(parse_function("").is_err());
        assert!(parse_function("not a function").is_err());
    }

    #[test]
    fn reversed_parens_in_header_are_an_error() {
        // `rfind(')') < find('(')` used to slice out of order and panic.
        let e = parse_function("fn f)(:\nbb0:\n    ret\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("precedes"), "{}", e.message);
    }

    #[test]
    fn oversized_ids_are_rejected_not_allocated() {
        // A block id names a slot in a dense vector; parsing `bb4000000000`
        // must fail instead of allocating four billion blocks.
        assert!(parse_function("fn f([]):\nbb4000000000:\n    ret\n").is_err());
        assert!(parse_function("fn f([]):\nbb0:\n    v4294967295 = mov #1\n    ret\n").is_err());
        assert!(parse_function("fn f([v4294967295]):\nbb0:\n    ret\n").is_err());
        assert!(parse_function("fn f([]):\nbb0:\n    spill r0, slot4294967295\n    ret\n").is_err());
        // The cap itself is inclusive.
        assert!(parse_function(&format!("fn f([]):\nbb0:\n    v{MAX_ID} = mov #1\n    ret\n")).is_ok());
    }

    #[test]
    fn dangling_branch_targets_are_errors_not_cfg_panics() {
        let e = parse_function("fn f([]):\nbb0:\n    br bb7\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bb7"), "{}", e.message);
        let e =
            parse_function("fn f([]):\nbb0:\n    br.lt r0, r1 -> bb1, bb9\nbb1:\n    ret\n")
                .unwrap_err();
        assert!(e.message.contains("bb9"), "{}", e.message);
    }
}

/// Parse a whole program from the textual form `Program`'s `Display`
/// emits: functions separated by `; fN` comment headers.
///
/// # Errors
///
/// [`ParseError`] from the first malformed function.
pub fn parse_program(text: &str) -> Result<crate::function::Program, ParseError> {
    let mut funcs = Vec::new();
    let mut chunk = String::new();
    let mut offset = 0usize;
    let mut chunk_start = 0usize;
    let flush = |chunk: &str, start: usize, funcs: &mut Vec<Function>| -> Result<(), ParseError> {
        let only_comments = chunk
            .lines()
            .all(|l| l.trim().is_empty() || l.trim().starts_with(';'));
        if only_comments {
            return Ok(());
        }
        match parse_function(chunk) {
            Ok(f) => {
                funcs.push(f);
                Ok(())
            }
            Err(e) => Err(ParseError {
                line: start + e.line,
                message: e.message,
            }),
        }
    };
    for line in text.lines() {
        offset += 1;
        if line.trim_start().starts_with("fn ") && !chunk.trim().is_empty() {
            flush(&chunk, chunk_start, &mut funcs)?;
            chunk.clear();
            chunk_start = offset - 1;
        }
        // The `; fN` separators carry no information beyond ordering.
        chunk.push_str(line);
        chunk.push('\n');
    }
    flush(&chunk, chunk_start, &mut funcs)?;
    Ok(crate::function::Program { funcs, entry: 0 })
}

#[cfg(test)]
mod program_tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::Program;

    #[test]
    fn program_roundtrip() {
        let mk = |name: &str, imm: i32| {
            let mut b = FunctionBuilder::new(name);
            let x = b.new_vreg();
            b.mov_imm(x, imm);
            b.ret(Some(x.into()));
            b.finish()
        };
        let p = Program {
            funcs: vec![mk("a", 1), mk("b", 2)],
            entry: 0,
        };
        let q = parse_program(&p.to_string()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn program_parse_error_carries_global_line() {
        let text = "fn a([]):\nbb0:\n    ret\nfn b([]):\nbb0:\n    v0 = bogus v1, v2\n";
        let e = parse_program(text).unwrap_err();
        assert_eq!(e.line, 6, "line number is global, not per-chunk");
    }
}
