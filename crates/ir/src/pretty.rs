//! Pretty-printing helpers beyond the basic `Display` impls.

use crate::function::Function;
use crate::liveness::{entity_to_reg, Liveness};

/// Render a function with per-block live-in/live-out annotations — the
/// format the worked examples in the paper (Figure 5) are checked against.
pub fn dump_with_liveness(f: &Function, l: &Liveness) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(s, "fn {}:", f.name);
    for (id, b) in f.iter_blocks() {
        let fmt_set = |set: &crate::bitset::BitSet| {
            let mut regs: Vec<String> = set
                .iter()
                .map(|e| format!("{}", entity_to_reg(e, f.vreg_count)))
                .collect();
            regs.sort();
            regs.join(",")
        };
        let _ = writeln!(
            s,
            "{id}: ; in=[{}] out=[{}]",
            fmt_set(l.block_live_in(id)),
            fmt_set(l.block_live_out(id))
        );
        for i in &b.insts {
            let _ = writeln!(s, "    {i}");
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::BinOp;

    #[test]
    fn dump_includes_liveness_annotations() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        let y = b.new_vreg();
        b.mov_imm(x, 1);
        b.bin_imm(BinOp::Add, y, x.into(), 1);
        b.ret(Some(y.into()));
        let f = b.finish();
        let l = Liveness::compute(&f);
        let s = dump_with_liveness(&f, &l);
        assert!(s.contains("bb0"));
        assert!(s.contains("in=[]"));
        assert!(s.contains("add"));
    }
}
