//! # dra-ir — three-address intermediate representation
//!
//! The IR underpinning the differential register allocation reproduction
//! (Zhuang & Pande, PLDI 2005). It models a small RISC machine: virtual and
//! physical registers, three-address arithmetic, loads/stores, structured
//! branching over a control-flow graph of basic blocks, calls and returns,
//! and the paper's `set_last_reg` decode-stage pseudo-instruction.
//!
//! The crate also provides the analyses every later stage leans on:
//! liveness ([`liveness`]), dominators ([`dom`]), natural loops and static
//! execution-frequency estimation ([`loops`]).
//!
//! ```
//! use dra_ir::{FunctionBuilder, BinOp, Reg};
//!
//! let mut b = FunctionBuilder::new("double");
//! let x = b.new_vreg();
//! let y = b.new_vreg();
//! b.mov_imm(x, 21);
//! b.bin(BinOp::Add, y, Reg::from(x), Reg::from(x));
//! b.ret(Some(Reg::from(y)));
//! let f = b.finish();
//! assert_eq!(f.num_blocks(), 1);
//! ```

pub mod bitset;
pub mod block;
pub mod builder;
pub mod dom;
pub mod function;
pub mod inst;
pub mod liveness;
pub mod loops;
pub mod parse;
pub mod pretty;
pub mod reg;
pub mod scratch;
pub mod validate;

pub use bitset::{BitMatrix, BitSet};
pub use block::{BasicBlock, BlockId};
pub use builder::FunctionBuilder;
pub use function::{Function, Program};
pub use inst::{AccessOrder, BinOp, Cond, Inst, SpillSlot};
pub use liveness::Liveness;
pub use reg::{PReg, Reg, RegClass, VReg};
