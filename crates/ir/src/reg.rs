//! Register identifiers: virtual, physical, and the classes they live in.

use std::fmt;

/// A virtual register, produced by the front end / workload generators and
/// consumed by the register allocators.
///
/// Virtual registers are dense small integers scoped to one [`crate::Function`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VReg(pub u32);

impl VReg {
    /// Index into dense per-function arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A physical (architected) register number.
///
/// Differential encoding is entirely about which *numbers* live ranges
/// receive, so `PReg` is a transparent small integer. The paper's `RegN`
/// is the count of these registers exposed through differential encoding.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PReg(pub u8);

impl PReg {
    /// Index into dense register-file arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw register number, as it would appear under direct encoding.
    #[inline]
    pub fn number(self) -> u8 {
        self.0
    }
}

impl fmt::Debug for PReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for PReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Register classes (Section 9.1 of the paper).
///
/// Encoding and decoding are performed separately per class, with one
/// `last_reg` decoder register for each class. The reproduction exercises
/// the integer class throughout and the float class in targeted tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum RegClass {
    /// General-purpose integer registers.
    #[default]
    Int,
    /// Floating-point registers.
    Float,
}

impl RegClass {
    /// All classes, in a fixed order usable for dense indexing.
    pub const ALL: [RegClass; 2] = [RegClass::Int, RegClass::Float];

    /// Dense index of this class.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            RegClass::Int => 0,
            RegClass::Float => 1,
        }
    }
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Int => write!(f, "int"),
            RegClass::Float => write!(f, "float"),
        }
    }
}

/// An operand register: virtual before allocation, physical after.
///
/// The allocators rewrite every `Reg::Virt` into a `Reg::Phys`; the
/// encoder and simulators require fully physical code.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Reg {
    /// A virtual register (pre-allocation).
    Virt(VReg),
    /// A physical register (post-allocation, or precolored).
    Phys(PReg),
}

impl Reg {
    /// Returns the virtual register, if this operand is virtual.
    #[inline]
    pub fn as_virt(self) -> Option<VReg> {
        match self {
            Reg::Virt(v) => Some(v),
            Reg::Phys(_) => None,
        }
    }

    /// Returns the physical register, if this operand is physical.
    #[inline]
    pub fn as_phys(self) -> Option<PReg> {
        match self {
            Reg::Phys(p) => Some(p),
            Reg::Virt(_) => None,
        }
    }

    /// True when the operand is still virtual.
    #[inline]
    pub fn is_virt(self) -> bool {
        matches!(self, Reg::Virt(_))
    }

    /// Returns the physical register.
    ///
    /// # Panics
    ///
    /// Panics if the operand is still virtual; use only on allocated code.
    #[inline]
    #[track_caller]
    pub fn expect_phys(self) -> PReg {
        match self {
            Reg::Phys(p) => p,
            Reg::Virt(v) => panic!("expected physical register, found {v}"),
        }
    }
}

impl From<VReg> for Reg {
    fn from(v: VReg) -> Self {
        Reg::Virt(v)
    }
}

impl From<PReg> for Reg {
    fn from(p: PReg) -> Self {
        Reg::Phys(p)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::Virt(v) => write!(f, "{v}"),
            Reg::Phys(p) => write!(f, "{p}"),
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vreg_roundtrip() {
        let v = VReg(7);
        assert_eq!(v.index(), 7);
        assert_eq!(format!("{v}"), "v7");
    }

    #[test]
    fn preg_roundtrip() {
        let p = PReg(3);
        assert_eq!(p.index(), 3);
        assert_eq!(p.number(), 3);
        assert_eq!(format!("{p}"), "r3");
    }

    #[test]
    fn reg_conversions() {
        let r: Reg = VReg(1).into();
        assert!(r.is_virt());
        assert_eq!(r.as_virt(), Some(VReg(1)));
        assert_eq!(r.as_phys(), None);

        let r: Reg = PReg(2).into();
        assert!(!r.is_virt());
        assert_eq!(r.expect_phys(), PReg(2));
    }

    #[test]
    #[should_panic(expected = "expected physical register")]
    fn expect_phys_panics_on_virtual() {
        let _ = Reg::Virt(VReg(0)).expect_phys();
    }

    #[test]
    fn class_indexing() {
        assert_eq!(RegClass::Int.index(), 0);
        assert_eq!(RegClass::Float.index(), 1);
        assert_eq!(RegClass::ALL[RegClass::Float.index()], RegClass::Float);
        assert_eq!(RegClass::default(), RegClass::Int);
    }

    #[test]
    fn reg_ordering_is_total() {
        let mut regs = vec![Reg::Phys(PReg(1)), Reg::Virt(VReg(0)), Reg::Phys(PReg(0))];
        regs.sort();
        assert_eq!(
            regs,
            vec![Reg::Virt(VReg(0)), Reg::Phys(PReg(0)), Reg::Phys(PReg(1))]
        );
    }
}
