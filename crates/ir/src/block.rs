//! Basic blocks and block identifiers.

use crate::inst::Inst;
use std::fmt;

/// Identifier of a basic block within one [`crate::Function`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Dense index of the block.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A basic block: a straight-line instruction sequence ending in a
/// terminator, plus CFG edges and a static execution-frequency estimate.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BasicBlock {
    /// Instructions, the last of which is the terminator once the function
    /// is sealed.
    pub insts: Vec<Inst>,
    /// Successor blocks (derived from the terminator by [`crate::Function::recompute_cfg`]).
    pub succs: Vec<BlockId>,
    /// Predecessor blocks (derived).
    pub preds: Vec<BlockId>,
    /// Static execution frequency estimate used to weight adjacency-graph
    /// edges and spill costs (10^loop-depth by default, profile-assignable).
    pub freq: f64,
}

impl BasicBlock {
    /// An empty block with unit frequency.
    pub fn new() -> Self {
        BasicBlock {
            insts: Vec::new(),
            succs: Vec::new(),
            preds: Vec::new(),
            freq: 1.0,
        }
    }

    /// The block's terminator, if the block is non-empty and sealed.
    pub fn terminator(&self) -> Option<&Inst> {
        self.insts.last().filter(|i| i.is_terminator())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;

    #[test]
    fn block_id_display() {
        assert_eq!(format!("{}", BlockId(3)), "bb3");
        assert_eq!(BlockId(3).index(), 3);
    }

    #[test]
    fn empty_block_has_no_terminator() {
        let b = BasicBlock::new();
        assert!(b.terminator().is_none());
        assert_eq!(b.freq, 1.0);
    }

    #[test]
    fn terminator_detected() {
        let mut b = BasicBlock::new();
        b.insts.push(Inst::Nop);
        assert!(b.terminator().is_none(), "nop is not a terminator");
        b.insts.push(Inst::Ret { value: None });
        assert_eq!(b.terminator(), Some(&Inst::Ret { value: None }));
    }
}
