//! Backward liveness analysis.
//!
//! Liveness runs over a unified *entity* space so the allocators can treat
//! precolored physical registers and virtual registers uniformly: entities
//! `0..vreg_count` are virtual registers, entities `vreg_count ..
//! vreg_count + MAX_PREGS` are physical registers.

use crate::bitset::BitSet;
use crate::block::BlockId;
use crate::function::Function;
use crate::reg::{PReg, Reg, VReg};
use crate::scratch;

/// Upper bound on physical register numbers tracked by liveness (the paper
/// sweeps `RegN` up to 64 in Table 2).
pub const MAX_PREGS: usize = 64;

/// Map a register operand to its dense entity index.
pub fn reg_to_entity(r: Reg, vreg_count: u32) -> usize {
    match r {
        Reg::Virt(v) => v.index(),
        Reg::Phys(p) => {
            assert!(p.index() < MAX_PREGS, "physical register {p} out of range");
            vreg_count as usize + p.index()
        }
    }
}

/// Inverse of [`reg_to_entity`].
pub fn entity_to_reg(e: usize, vreg_count: u32) -> Reg {
    if e < vreg_count as usize {
        Reg::Virt(VReg(e as u32))
    } else {
        Reg::Phys(PReg((e - vreg_count as usize) as u8))
    }
}

/// Per-block live-in/live-out sets.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// `live_in[b]`: entities live at the start of block `b`.
    pub live_in: Vec<BitSet>,
    /// `live_out[b]`: entities live at the end of block `b`.
    pub live_out: Vec<BitSet>,
    /// Size of the entity space (`vreg_count + MAX_PREGS`).
    pub num_entities: usize,
    /// Copied from the analyzed function.
    pub vreg_count: u32,
}

impl Liveness {
    /// Run the backward dataflow to a fixed point.
    ///
    /// The solver is a predecessor-driven worklist: blocks are seeded in
    /// postorder (successors before predecessors, the fastest direction
    /// for a backward problem) and a block re-enters the list only when
    /// one of its successors' `live_in` actually changed. Transfer
    /// functions run in two reused scratch [`BitSet`]s, so the steady
    /// state allocates nothing.
    ///
    /// Values returned by the function (`Ret`) are uses; function
    /// parameters are treated as live-in to the entry block by virtue of
    /// having no dominating def — callers that care should consult
    /// [`Liveness::live_in`] of the entry.
    pub fn compute(f: &Function) -> Liveness {
        let nb = f.num_blocks();
        let ne = f.vreg_count as usize + MAX_PREGS;
        // Per-block gen (upward-exposed uses) and kill (defs). All bitset
        // storage comes from the per-thread scratch pool (a fresh
        // allocation when reuse is off or the pool is dry).
        let mut gen_b: Vec<BitSet> = scratch::take_set_vec(nb);
        let mut kill_b: Vec<BitSet> = scratch::take_set_vec(nb);
        for b in &f.blocks {
            let mut g = scratch::take_set(ne);
            let mut k = scratch::take_set(ne);
            for inst in &b.insts {
                for u in inst.uses() {
                    let e = reg_to_entity(u, f.vreg_count);
                    if !k.contains(e) {
                        g.insert(e);
                    }
                }
                for d in inst.defs() {
                    k.insert(reg_to_entity(d, f.vreg_count));
                }
            }
            gen_b.push(g);
            kill_b.push(k);
        }

        let mut live_in = scratch::take_set_vec(nb);
        let mut live_out = scratch::take_set_vec(nb);
        for _ in 0..nb {
            live_in.push(scratch::take_set(ne));
            live_out.push(scratch::take_set(ne));
        }
        // Seed the stack so the first pops come in postorder: pushing the
        // RPO forward means the deepest (last) blocks pop first.
        let rpo = f.reverse_postorder();
        let mut stack: Vec<usize> = rpo.iter().map(|b| b.index()).collect();
        let mut on_stack = scratch::take_set(nb.max(1));
        let mut reachable = scratch::take_set(nb.max(1));
        for &bi in &stack {
            on_stack.insert(bi);
            reachable.insert(bi);
        }
        let mut out = scratch::take_set(ne);
        let mut inn = scratch::take_set(ne);
        while let Some(bi) = stack.pop() {
            on_stack.remove(bi);
            out.clear();
            for &s in &f.blocks[bi].succs {
                out.union_with(&live_in[s.index()]);
            }
            // in = gen ∪ (out − kill)
            inn.copy_from(&out);
            inn.subtract(&kill_b[bi]);
            inn.union_with(&gen_b[bi]);
            live_out[bi].copy_from(&out);
            if inn != live_in[bi] {
                live_in[bi].copy_from(&inn);
                for &p in &f.blocks[bi].preds {
                    // Only reachable blocks participate (matching the RPO
                    // sweep this replaced).
                    if reachable.contains(p.index()) && on_stack.insert(p.index()) {
                        stack.push(p.index());
                    }
                }
            }
        }
        scratch::put_set_vec(gen_b);
        scratch::put_set_vec(kill_b);
        scratch::put_set(on_stack);
        scratch::put_set(reachable);
        scratch::put_set(out);
        scratch::put_set(inn);
        Liveness {
            live_in,
            live_out,
            num_entities: ne,
            vreg_count: f.vreg_count,
        }
    }

    /// Return this result's bitset storage to the per-thread scratch pool.
    ///
    /// Call this instead of dropping a `Liveness` in compile hot paths;
    /// the next [`Liveness::compute`] on the same thread then runs
    /// allocation-free. Dropping is always safe, just slower.
    pub fn recycle(self) {
        scratch::put_set_vec(self.live_in);
        scratch::put_set_vec(self.live_out);
    }

    /// Live set at block entry.
    pub fn block_live_in(&self, b: BlockId) -> &BitSet {
        &self.live_in[b.index()]
    }

    /// Live set at block exit.
    pub fn block_live_out(&self, b: BlockId) -> &BitSet {
        &self.live_out[b.index()]
    }

    /// Walk a block backwards, invoking `visit(inst_index, &live_after)`
    /// with the set of entities live immediately *after* each instruction,
    /// then updating the set across the instruction. This is the primitive
    /// interference-graph construction and pressure measurement build on.
    pub fn for_each_inst_reverse(
        &self,
        f: &Function,
        b: BlockId,
        mut visit: impl FnMut(usize, &BitSet),
    ) {
        let mut live = scratch::take_set(self.num_entities);
        live.copy_from(&self.live_out[b.index()]);
        let insts = &f.blocks[b.index()].insts;
        for (i, inst) in insts.iter().enumerate().rev() {
            visit(i, &live);
            for d in inst.defs() {
                live.remove(reg_to_entity(d, self.vreg_count));
            }
            for u in inst.uses() {
                live.insert(reg_to_entity(u, self.vreg_count));
            }
        }
        scratch::put_set(live);
    }

    /// Maximum number of simultaneously-live *virtual* registers across
    /// every program point (MAXLIVE), the quantity the optimal spiller
    /// drives below `RegN`.
    ///
    /// Maintains a running live count across the backward sweep instead
    /// of popcounting the whole set at every instruction: one O(entities)
    /// scan per block, then O(1) per operand. The program points visited
    /// (block entry plus after-each-instruction) are exactly the ones the
    /// per-point popcount version visited, so the result is unchanged —
    /// this was the first superlinear corner the 10k-vreg corpus profiles
    /// surfaced.
    pub fn max_pressure(&self, f: &Function) -> usize {
        let vc = self.vreg_count as usize;
        let mut max = 0;
        let mut live = scratch::take_set(self.num_entities);
        for (b, _) in f.iter_blocks() {
            live.copy_from(&self.live_out[b.index()]);
            let mut count = live.iter().filter(|&e| e < vc).count();
            max = max.max(count);
            // Walking backwards, the set after each step is the live-before
            // of that instruction — i.e. the live-after of its predecessor,
            // ending at the block's live-in.
            for inst in f.blocks[b.index()].insts.iter().rev() {
                for d in inst.defs() {
                    let e = reg_to_entity(d, self.vreg_count);
                    if live.remove(e) && e < vc {
                        count -= 1;
                    }
                }
                for u in inst.uses() {
                    let e = reg_to_entity(u, self.vreg_count);
                    if live.insert(e) && e < vc {
                        count += 1;
                    }
                }
                max = max.max(count);
            }
        }
        scratch::put_set(live);
        max
    }
}

/// Compute MAXLIVE of `f` and recycle the analysis storage in one step —
/// the allocation-free form of `Liveness::compute(f).max_pressure(f)`.
pub fn max_pressure_of(f: &Function) -> usize {
    let l = Liveness::compute(f);
    let p = l.max_pressure(f);
    l.recycle();
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, Cond};

    #[test]
    fn entity_roundtrip() {
        let vc = 10;
        for r in [Reg::Virt(VReg(0)), Reg::Virt(VReg(9)), Reg::Phys(PReg(0)), Reg::Phys(PReg(63))] {
            assert_eq!(entity_to_reg(reg_to_entity(r, vc), vc), r);
        }
    }

    #[test]
    fn straight_line_liveness() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        let y = b.new_vreg();
        b.mov_imm(x, 1);
        b.bin_imm(BinOp::Add, y, x.into(), 2);
        b.ret(Some(y.into()));
        let f = b.finish();
        let l = Liveness::compute(&f);
        assert!(l.block_live_in(BlockId(0)).is_empty());
        assert!(l.block_live_out(BlockId(0)).is_empty());
    }

    #[test]
    fn loop_carried_value_is_live_around_backedge() {
        let mut b = FunctionBuilder::new("f");
        let i = b.new_vreg();
        let n = b.new_vreg();
        b.mov_imm(i, 0);
        b.mov_imm(n, 10);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        b.cond_br(Cond::Lt, i.into(), n.into(), body, exit);
        b.switch_to(body);
        b.bin_imm(BinOp::Add, i, i.into(), 1);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let l = Liveness::compute(&f);
        let ie = reg_to_entity(i.into(), f.vreg_count);
        let ne = reg_to_entity(n.into(), f.vreg_count);
        assert!(l.block_live_in(header).contains(ie));
        assert!(l.block_live_in(header).contains(ne));
        assert!(l.block_live_out(body).contains(ie), "i live around backedge");
        assert!(l.block_live_out(body).contains(ne), "n live around backedge");
        assert!(!l.block_live_in(exit).contains(ie));
    }

    #[test]
    fn dead_def_is_not_live() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        let dead = b.new_vreg();
        b.mov_imm(x, 1);
        b.mov_imm(dead, 2);
        b.ret(Some(x.into()));
        let f = b.finish();
        let l = Liveness::compute(&f);
        let mut seen_dead_live = false;
        let de = reg_to_entity(dead.into(), f.vreg_count);
        l.for_each_inst_reverse(&f, BlockId(0), |_, live| {
            seen_dead_live |= live.contains(de);
        });
        assert!(!seen_dead_live);
    }

    #[test]
    fn physical_regs_participate() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        b.push(crate::inst::Inst::Mov {
            dst: x.into(),
            src: Reg::Phys(PReg(0)),
        });
        b.ret(Some(x.into()));
        let f = b.finish();
        let l = Liveness::compute(&f);
        let pe = reg_to_entity(Reg::Phys(PReg(0)), f.vreg_count);
        assert!(l.block_live_in(BlockId(0)).contains(pe), "p0 is live-in");
    }

    #[test]
    fn max_pressure_counts_overlap() {
        let mut b = FunctionBuilder::new("f");
        let vs: Vec<_> = (0..5).map(|_| b.new_vreg()).collect();
        for (k, &v) in vs.iter().enumerate() {
            b.mov_imm(v, k as i32);
        }
        let sum = b.new_vreg();
        b.mov_imm(sum, 0);
        for &v in &vs {
            b.bin(BinOp::Add, sum, sum.into(), v.into());
        }
        b.ret(Some(sum.into()));
        let f = b.finish();
        let l = Liveness::compute(&f);
        // All 5 values plus the accumulator overlap right after sum's init.
        assert!(l.max_pressure(&f) >= 5);
    }

    #[test]
    fn diamond_join_merges_liveness() {
        let mut b = FunctionBuilder::new("f");
        let c = b.new_vreg();
        let x = b.new_vreg();
        b.mov_imm(c, 0);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.cond_br(Cond::Eq, c.into(), c.into(), t, e);
        b.switch_to(t);
        b.mov_imm(x, 1);
        b.br(j);
        b.switch_to(e);
        b.mov_imm(x, 2);
        b.br(j);
        b.switch_to(j);
        b.ret(Some(x.into()));
        let f = b.finish();
        let l = Liveness::compute(&f);
        let xe = reg_to_entity(x.into(), f.vreg_count);
        assert!(l.block_live_in(j).contains(xe));
        assert!(l.block_live_out(t).contains(xe));
        assert!(
            !l.block_live_in(t).contains(xe),
            "x defined on both arms, not live into them"
        );
    }
}
