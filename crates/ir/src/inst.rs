//! Instructions of the three-address IR.
//!
//! The instruction set mirrors a small RISC machine (the paper evaluates on
//! an ARM/THUMB-like model): three-address ALU operations, register and
//! immediate moves, loads/stores, spill accesses against abstract spill
//! slots, branches, calls, returns, and the paper's `set_last_reg`
//! decode-stage pseudo-instruction (Section 2.3).

use crate::block::BlockId;
use crate::reg::{Reg, RegClass};
use std::fmt;

/// Binary ALU operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division; division by zero yields zero (simulator convention).
    Div,
    /// Remainder; remainder by zero yields the dividend.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (by amount masked to 31 bits).
    Shl,
    /// Arithmetic right shift (by amount masked to 31 bits).
    Shr,
}

impl BinOp {
    /// All binary operations, for exhaustive test sweeps.
    pub const ALL: [BinOp; 10] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
    ];

    /// Evaluate the operation on two values with the simulator's wrapping
    /// semantics.
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            BinOp::Rem => {
                if b == 0 {
                    a
                } else {
                    a.wrapping_rem(b)
                }
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl((b & 31) as u32),
            BinOp::Shr => a.wrapping_shr((b & 31) as u32),
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
        };
        f.write_str(s)
    }
}

/// Branch conditions for [`Inst::CondBr`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less than.
    Lt,
    /// Signed less than or equal.
    Le,
    /// Signed greater than.
    Gt,
    /// Signed greater than or equal.
    Ge,
}

impl Cond {
    /// All conditions, for exhaustive test sweeps.
    pub const ALL: [Cond; 6] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge];

    /// Evaluate the condition on two signed values.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
            Cond::Ge => a >= b,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// The nominal register access order within one instruction (Section 2:
/// "Access order must be agreed upon beforehand to make the encoding and
/// decoding work consistently"; Section 9.4 floats per-opcode orders as
/// future work — the `DstThenSrcs` alternative here is the ablation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum AccessOrder {
    /// The paper's order: `src1, src2, …, dst`.
    #[default]
    SrcsThenDst,
    /// The alternative: `dst, src1, src2, …`.
    DstThenSrcs,
}

/// An abstract spill slot in the function's frame, assigned by the spiller.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpillSlot(pub u32);

impl SpillSlot {
    /// Dense index of the slot.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SpillSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot{}", self.0)
    }
}

impl fmt::Display for SpillSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// One IR instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Inst {
    /// `dst = op(lhs, rhs)`.
    Bin {
        /// The operation.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// First source operand.
        lhs: Reg,
        /// Second source operand.
        rhs: Reg,
    },
    /// `dst = op(src, imm)`.
    BinImm {
        /// The operation.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Reg,
        /// Immediate operand.
        imm: i32,
    },
    /// `dst = src` (register move; the coalescers hunt these).
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = imm`.
    MovImm {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: i32,
    },
    /// Materialize the `index`-th function argument: `dst = arg[index]`.
    ///
    /// Emitted in the entry block for each formal parameter so parameters
    /// have ordinary defs (and are therefore spillable like any value).
    GetParam {
        /// Destination register.
        dst: Reg,
        /// Zero-based argument index.
        index: u8,
    },
    /// `dst = mem[base + offset]`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i32,
    },
    /// `mem[base + offset] = src`.
    Store {
        /// Value to store.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i32,
    },
    /// Reload from a spill slot: `dst = frame[slot]`.
    SpillLoad {
        /// Destination register.
        dst: Reg,
        /// Spill slot.
        slot: SpillSlot,
    },
    /// Spill to a slot: `frame[slot] = src`.
    SpillStore {
        /// Value to spill.
        src: Reg,
        /// Spill slot.
        slot: SpillSlot,
    },
    /// Unconditional branch.
    Br {
        /// Branch target.
        target: BlockId,
    },
    /// Conditional branch: `if cond(lhs, rhs) goto then_bb else goto else_bb`.
    CondBr {
        /// Comparison performed.
        cond: Cond,
        /// First comparison operand.
        lhs: Reg,
        /// Second comparison operand.
        rhs: Reg,
        /// Taken target.
        then_bb: BlockId,
        /// Fall-through target.
        else_bb: BlockId,
    },
    /// Direct call. Arguments are read, the return value (if any) written.
    Call {
        /// Index of the callee within the [`crate::Program`].
        callee: u32,
        /// Argument registers, read in order.
        args: Vec<Reg>,
        /// Return-value register, if the callee produces one.
        ret: Option<Reg>,
    },
    /// Return from the function.
    Ret {
        /// Returned value, if any.
        value: Option<Reg>,
    },
    /// The paper's `set_last_reg(value, delay)` pseudo-instruction
    /// (Section 2.3). Consumed at decode; never enters the execute stage.
    SetLastReg {
        /// Register class whose `last_reg` decoder state is set.
        class: RegClass,
        /// New `last_reg` value.
        value: u8,
        /// Number of register fields decoded before the assignment takes
        /// effect (0 = immediately).
        delay: u8,
    },
    /// No operation.
    Nop,
}

impl Inst {
    /// Registers read by this instruction, in the paper's nominal access
    /// order `src1, src2, …` (Section 2).
    pub fn uses(&self) -> Vec<Reg> {
        match self {
            Inst::Bin { lhs, rhs, .. } => vec![*lhs, *rhs],
            Inst::BinImm { src, .. } => vec![*src],
            Inst::Mov { src, .. } => vec![*src],
            Inst::MovImm { .. } | Inst::GetParam { .. } => vec![],
            Inst::Load { base, .. } => vec![*base],
            Inst::Store { src, base, .. } => vec![*src, *base],
            Inst::SpillLoad { .. } => vec![],
            Inst::SpillStore { src, .. } => vec![*src],
            Inst::Br { .. } => vec![],
            Inst::CondBr { lhs, rhs, .. } => vec![*lhs, *rhs],
            Inst::Call { args, .. } => args.clone(),
            Inst::Ret { value } => value.iter().copied().collect(),
            Inst::SetLastReg { .. } | Inst::Nop => vec![],
        }
    }

    /// Registers written by this instruction (the `dst` access, last in the
    /// nominal access order).
    pub fn defs(&self) -> Vec<Reg> {
        match self {
            Inst::Bin { dst, .. }
            | Inst::BinImm { dst, .. }
            | Inst::Mov { dst, .. }
            | Inst::MovImm { dst, .. }
            | Inst::GetParam { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::SpillLoad { dst, .. } => vec![*dst],
            Inst::Call { ret, .. } => ret.iter().copied().collect(),
            _ => vec![],
        }
    }

    /// The full register access sequence of this instruction under the
    /// paper's access order: sources first (in operand order), then the
    /// destination.
    pub fn accesses(&self) -> Vec<Reg> {
        self.accesses_in(AccessOrder::SrcsThenDst)
    }

    /// The access sequence under an explicit [`AccessOrder`].
    pub fn accesses_in(&self, order: AccessOrder) -> Vec<Reg> {
        match order {
            AccessOrder::SrcsThenDst => {
                let mut v = self.uses();
                v.extend(self.defs());
                v
            }
            AccessOrder::DstThenSrcs => {
                let mut v = self.defs();
                v.extend(self.uses());
                v
            }
        }
    }

    /// Rewrite every register operand through `f` (used by allocators to
    /// substitute assignments and by spill rewriting).
    pub fn map_regs(&mut self, mut f: impl FnMut(Reg) -> Reg) {
        match self {
            Inst::Bin { dst, lhs, rhs, .. } => {
                *lhs = f(*lhs);
                *rhs = f(*rhs);
                *dst = f(*dst);
            }
            Inst::BinImm { dst, src, .. } => {
                *src = f(*src);
                *dst = f(*dst);
            }
            Inst::Mov { dst, src } => {
                *src = f(*src);
                *dst = f(*dst);
            }
            Inst::MovImm { dst, .. } | Inst::GetParam { dst, .. } => *dst = f(*dst),
            Inst::Load { dst, base, .. } => {
                *base = f(*base);
                *dst = f(*dst);
            }
            Inst::Store { src, base, .. } => {
                *src = f(*src);
                *base = f(*base);
            }
            Inst::SpillLoad { dst, .. } => *dst = f(*dst),
            Inst::SpillStore { src, .. } => *src = f(*src),
            Inst::CondBr { lhs, rhs, .. } => {
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
            Inst::Call { args, ret, .. } => {
                for a in args.iter_mut() {
                    *a = f(*a);
                }
                if let Some(r) = ret {
                    *r = f(*r);
                }
            }
            Inst::Ret { value } => {
                if let Some(r) = value {
                    *r = f(*r);
                }
            }
            Inst::Br { .. } | Inst::SetLastReg { .. } | Inst::Nop => {}
        }
    }

    /// True for control-transfer instructions that must terminate a block.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Inst::Br { .. } | Inst::CondBr { .. } | Inst::Ret { .. })
    }

    /// True for a register-to-register move (a coalescing candidate).
    pub fn is_move(&self) -> bool {
        matches!(self, Inst::Mov { .. })
    }

    /// True for spill traffic (the quantity Figure 11 counts).
    pub fn is_spill(&self) -> bool {
        matches!(self, Inst::SpillLoad { .. } | Inst::SpillStore { .. })
    }

    /// True for `set_last_reg` (the encoding cost Figure 12 counts).
    pub fn is_set_last_reg(&self) -> bool {
        matches!(self, Inst::SetLastReg { .. })
    }

    /// Successor blocks named by this instruction, if it is a terminator.
    pub fn branch_targets(&self) -> Vec<BlockId> {
        match self {
            Inst::Br { target } => vec![*target],
            Inst::CondBr {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            _ => vec![],
        }
    }

    /// True when the instruction touches memory (spill or program data);
    /// used by the schedulers to model memory-port contention.
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Inst::Load { .. }
                | Inst::Store { .. }
                | Inst::SpillLoad { .. }
                | Inst::SpillStore { .. }
        )
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Bin { op, dst, lhs, rhs } => write!(f, "{dst} = {op} {lhs}, {rhs}"),
            Inst::BinImm { op, dst, src, imm } => write!(f, "{dst} = {op} {src}, #{imm}"),
            Inst::Mov { dst, src } => write!(f, "{dst} = mov {src}"),
            Inst::MovImm { dst, imm } => write!(f, "{dst} = mov #{imm}"),
            Inst::GetParam { dst, index } => write!(f, "{dst} = param {index}"),
            Inst::Load { dst, base, offset } => write!(f, "{dst} = load [{base}+{offset}]"),
            Inst::Store { src, base, offset } => write!(f, "store {src}, [{base}+{offset}]"),
            Inst::SpillLoad { dst, slot } => write!(f, "{dst} = reload {slot}"),
            Inst::SpillStore { src, slot } => write!(f, "spill {src}, {slot}"),
            Inst::Br { target } => write!(f, "br {target}"),
            Inst::CondBr {
                cond,
                lhs,
                rhs,
                then_bb,
                else_bb,
            } => write!(f, "br.{cond} {lhs}, {rhs} -> {then_bb}, {else_bb}"),
            Inst::Call { callee, args, ret } => {
                if let Some(r) = ret {
                    write!(f, "{r} = call f{callee}(")?;
                } else {
                    write!(f, "call f{callee}(")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Inst::Ret { value } => match value {
                Some(v) => write!(f, "ret {v}"),
                None => write!(f, "ret"),
            },
            Inst::SetLastReg {
                class,
                value,
                delay,
            } => write!(f, "set_last_reg.{class}({value}, {delay})"),
            Inst::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{PReg, VReg};

    fn v(n: u32) -> Reg {
        Reg::Virt(VReg(n))
    }

    #[test]
    fn binop_eval_basics() {
        assert_eq!(BinOp::Add.eval(2, 3), 5);
        assert_eq!(BinOp::Sub.eval(2, 3), -1);
        assert_eq!(BinOp::Mul.eval(4, 3), 12);
        assert_eq!(BinOp::Div.eval(7, 2), 3);
        assert_eq!(BinOp::Div.eval(7, 0), 0, "division by zero yields zero");
        assert_eq!(BinOp::Rem.eval(7, 3), 1);
        assert_eq!(BinOp::Rem.eval(7, 0), 7, "remainder by zero yields lhs");
        assert_eq!(BinOp::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(BinOp::Or.eval(0b1100, 0b1010), 0b1110);
        assert_eq!(BinOp::Xor.eval(0b1100, 0b1010), 0b0110);
        assert_eq!(BinOp::Shl.eval(1, 4), 16);
        assert_eq!(BinOp::Shr.eval(-16, 2), -4);
    }

    #[test]
    fn binop_eval_never_panics_on_extremes() {
        for op in BinOp::ALL {
            for a in [i64::MIN, -1, 0, 1, i64::MAX] {
                for b in [i64::MIN, -1, 0, 1, i64::MAX] {
                    let _ = op.eval(a, b);
                }
            }
        }
    }

    #[test]
    fn cond_eval() {
        assert!(Cond::Eq.eval(1, 1));
        assert!(Cond::Ne.eval(1, 2));
        assert!(Cond::Lt.eval(-1, 0));
        assert!(Cond::Le.eval(0, 0));
        assert!(Cond::Gt.eval(1, 0));
        assert!(Cond::Ge.eval(1, 1));
        assert!(!Cond::Lt.eval(0, 0));
    }

    #[test]
    fn access_order_is_sources_then_dest() {
        let i = Inst::Bin {
            op: BinOp::Add,
            dst: v(0),
            lhs: v(1),
            rhs: v(2),
        };
        assert_eq!(i.accesses(), vec![v(1), v(2), v(0)]);
        assert_eq!(i.uses(), vec![v(1), v(2)]);
        assert_eq!(i.defs(), vec![v(0)]);
    }

    #[test]
    fn store_uses_both_value_and_base() {
        let i = Inst::Store {
            src: v(5),
            base: v(6),
            offset: 8,
        };
        assert_eq!(i.uses(), vec![v(5), v(6)]);
        assert!(i.defs().is_empty());
        assert!(i.is_memory());
    }

    #[test]
    fn map_regs_rewrites_all_operands() {
        let mut i = Inst::Bin {
            op: BinOp::Add,
            dst: v(0),
            lhs: v(1),
            rhs: v(2),
        };
        i.map_regs(|_| Reg::Phys(PReg(9)));
        assert_eq!(
            i.accesses(),
            vec![Reg::Phys(PReg(9)), Reg::Phys(PReg(9)), Reg::Phys(PReg(9))]
        );
    }

    #[test]
    fn map_regs_covers_every_variant_with_regs() {
        let insts = vec![
            Inst::BinImm {
                op: BinOp::Add,
                dst: v(0),
                src: v(1),
                imm: 3,
            },
            Inst::Mov { dst: v(0), src: v(1) },
            Inst::MovImm { dst: v(0), imm: 1 },
            Inst::Load {
                dst: v(0),
                base: v(1),
                offset: 0,
            },
            Inst::Store {
                src: v(0),
                base: v(1),
                offset: 0,
            },
            Inst::SpillLoad {
                dst: v(0),
                slot: SpillSlot(0),
            },
            Inst::SpillStore {
                src: v(0),
                slot: SpillSlot(0),
            },
            Inst::CondBr {
                cond: Cond::Eq,
                lhs: v(0),
                rhs: v(1),
                then_bb: BlockId(0),
                else_bb: BlockId(1),
            },
            Inst::Call {
                callee: 0,
                args: vec![v(0), v(1)],
                ret: Some(v(2)),
            },
            Inst::Ret { value: Some(v(0)) },
        ];
        for mut i in insts {
            let before = i.accesses().len();
            assert!(before > 0, "{i} should access registers");
            i.map_regs(|_| Reg::Phys(PReg(1)));
            for r in i.accesses() {
                assert_eq!(r, Reg::Phys(PReg(1)), "unmapped operand in {i}");
            }
        }
    }

    #[test]
    fn terminator_classification() {
        assert!(Inst::Br { target: BlockId(0) }.is_terminator());
        assert!(Inst::Ret { value: None }.is_terminator());
        assert!(!Inst::Nop.is_terminator());
        assert!(Inst::Mov { dst: v(0), src: v(1) }.is_move());
        assert!(Inst::SpillLoad {
            dst: v(0),
            slot: SpillSlot(1)
        }
        .is_spill());
        assert!(Inst::SetLastReg {
            class: RegClass::Int,
            value: 3,
            delay: 0
        }
        .is_set_last_reg());
    }

    #[test]
    fn branch_targets() {
        let i = Inst::CondBr {
            cond: Cond::Lt,
            lhs: v(0),
            rhs: v(1),
            then_bb: BlockId(4),
            else_bb: BlockId(5),
        };
        assert_eq!(i.branch_targets(), vec![BlockId(4), BlockId(5)]);
        assert!(Inst::Nop.branch_targets().is_empty());
    }

    #[test]
    fn display_formats() {
        let i = Inst::Bin {
            op: BinOp::Add,
            dst: v(0),
            lhs: v(1),
            rhs: v(2),
        };
        assert_eq!(format!("{i}"), "v0 = add v1, v2");
        let s = Inst::SetLastReg {
            class: RegClass::Int,
            value: 5,
            delay: 1,
        };
        assert_eq!(format!("{s}"), "set_last_reg.int(5, 1)");
    }
}
