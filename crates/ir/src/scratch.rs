//! Per-thread scratch arenas for the allocation-heavy analyses.
//!
//! Corpus-scale batch compilation (10k+ functions per run) spends a
//! measurable fraction of its time in the allocator: every compile builds
//! fresh liveness bitset vectors, interference adjacency, IRC worklist
//! arrays, and remap incidence indexes, then drops them. The pools here
//! let those buffers be *recycled* across compiles on the same worker
//! thread, so steady-state compiles allocate O(1) instead of
//! O(per-function).
//!
//! Ownership rules (also documented in DESIGN.md §13):
//!
//! - Pools are **thread-local**: a batch worker only ever sees buffers it
//!   recycled itself, so there is no cross-thread state and determinism
//!   is untouched.
//! - Every buffer taken from a pool is **fully re-initialized** before
//!   use ([`crate::BitSet::reset`], `clear` + `resize`), so a pooled
//!   buffer is observationally identical to a fresh allocation — output
//!   stays bit-identical with reuse on or off.
//! - Recycling is **opt-in at the call site**: an analysis result that
//!   escapes to a caller (e.g. [`crate::Liveness`]) is only returned to
//!   the pool through an explicit `recycle()` once the caller is done.
//!   Dropping it instead is always safe, merely slower.
//! - The global [`set_reuse`] switch (default on) exists so benchmarks
//!   can measure the pre-arena baseline in-process; it flips allocation
//!   strategy only, never results.

use crate::bitset::BitSet;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};

static REUSE: AtomicBool = AtomicBool::new(true);

/// Enable or disable buffer reuse process-wide (default: enabled).
///
/// Purely an allocation-strategy switch: results are bit-identical either
/// way. Benchmarks flip it to compare arena vs. fresh-allocation cost.
pub fn set_reuse(on: bool) {
    REUSE.store(on, Ordering::Relaxed);
}

/// Is buffer reuse currently enabled?
pub fn reuse_enabled() -> bool {
    REUSE.load(Ordering::Relaxed)
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

/// Pool caps: keep at most this many carcasses of each kind per thread so
/// one outlier function cannot pin unbounded memory.
const MAX_SETS: usize = 256;
const MAX_SET_VECS: usize = 16;

#[derive(Default)]
struct Pool {
    /// Individual bitset carcasses (any capacity; `reset` on take).
    sets: Vec<BitSet>,
    /// Emptied `Vec<BitSet>` carcasses (spines for per-block vectors).
    set_vecs: Vec<Vec<BitSet>>,
}

/// Take a bitset of exactly `capacity`, pooled when reuse is on.
pub fn take_set(capacity: usize) -> BitSet {
    if !reuse_enabled() {
        return BitSet::new(capacity);
    }
    POOL.with(|p| match p.borrow_mut().sets.pop() {
        Some(mut s) => {
            s.reset(capacity);
            s
        }
        None => BitSet::new(capacity),
    })
}

/// Return a bitset to the thread pool (dropped when reuse is off or the
/// pool is full).
pub fn put_set(s: BitSet) {
    if !reuse_enabled() {
        return;
    }
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.sets.len() < MAX_SETS {
            p.sets.push(s);
        }
    });
}

/// Take an empty `Vec<BitSet>` spine with capacity for at least `n`.
pub fn take_set_vec(n: usize) -> Vec<BitSet> {
    if !reuse_enabled() {
        return Vec::with_capacity(n);
    }
    POOL.with(|p| match p.borrow_mut().set_vecs.pop() {
        Some(mut v) => {
            debug_assert!(v.is_empty());
            v.reserve(n);
            v
        }
        None => Vec::with_capacity(n),
    })
}

/// Return a `Vec<BitSet>` to the pool: its elements go back as individual
/// set carcasses and the emptied spine is kept for reuse.
pub fn put_set_vec(mut v: Vec<BitSet>) {
    if !reuse_enabled() {
        return;
    }
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        for s in v.drain(..) {
            if p.sets.len() < MAX_SETS {
                p.sets.push(s);
            }
        }
        if p.set_vecs.len() < MAX_SET_VECS {
            p.set_vecs.push(v);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooled_set_is_fresh() {
        let mut s = take_set(70);
        s.insert(3);
        s.insert(69);
        put_set(s);
        let t = take_set(100);
        assert_eq!(t.capacity(), 100);
        assert!(t.is_empty(), "recycled set must come back empty");
        assert!(!t.contains(3));
    }

    #[test]
    fn pooled_vec_round_trip() {
        let mut v = take_set_vec(4);
        for _ in 0..4 {
            v.push(take_set(10));
        }
        put_set_vec(v);
        let w = take_set_vec(2);
        assert!(w.is_empty());
    }

    #[test]
    fn reuse_toggle_is_inert_for_values() {
        set_reuse(false);
        let s = take_set(33);
        assert_eq!(s.capacity(), 33);
        put_set(s);
        set_reuse(true);
        let t = take_set(33);
        assert!(t.is_empty());
    }
}
