//! Dominator tree computation (Cooper–Harvey–Kennedy iterative algorithm).

use crate::block::BlockId;
use crate::function::Function;

/// Immediate-dominator table for the reachable blocks of a function.
#[derive(Clone, Debug)]
pub struct Dominators {
    /// `idom[b]` — immediate dominator of block `b`; `None` for the entry
    /// and for unreachable blocks.
    idom: Vec<Option<BlockId>>,
    /// Reverse postorder used during computation (reachable blocks only).
    rpo: Vec<BlockId>,
    /// Position of each block in `rpo`; `usize::MAX` for unreachable.
    rpo_pos: Vec<usize>,
}

impl Dominators {
    /// Compute dominators for `f`.
    pub fn compute(f: &Function) -> Dominators {
        let nb = f.num_blocks();
        let rpo = f.reverse_postorder();
        let mut rpo_pos = vec![usize::MAX; nb];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_pos[b.index()] = i;
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; nb];
        idom[f.entry.index()] = Some(f.entry);

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &f.block(b).preds {
                    if idom[p.index()].is_none() {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => Self::intersect(&idom, &rpo_pos, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        // The entry's self-idom is an implementation detail; expose None.
        idom[f.entry.index()] = None;
        Dominators { idom, rpo, rpo_pos }
    }

    fn intersect(
        idom: &[Option<BlockId>],
        rpo_pos: &[usize],
        mut a: BlockId,
        mut b: BlockId,
    ) -> BlockId {
        while a != b {
            while rpo_pos[a.index()] > rpo_pos[b.index()] {
                a = idom[a.index()].expect("walk reaches entry");
            }
            while rpo_pos[b.index()] > rpo_pos[a.index()] {
                b = idom[b.index()].expect("walk reaches entry");
            }
        }
        a
    }

    /// Immediate dominator of `b` (`None` for the entry / unreachable).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// Does `a` dominate `b`? (Reflexive: every block dominates itself.)
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.rpo_pos[b.index()] == usize::MAX {
            return false; // unreachable blocks are dominated by nothing
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(i) => cur = i,
                None => return false,
            }
        }
    }

    /// Reverse postorder of reachable blocks (entry first).
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::Cond;
    use crate::reg::Reg;

    /// entry -> (a | b) -> join -> ret, with a loop around `a`.
    fn build() -> (Function, BlockId, BlockId, BlockId, BlockId) {
        let mut bld = FunctionBuilder::new("f");
        let c = bld.new_vreg();
        bld.mov_imm(c, 0);
        let a = bld.new_block();
        let b = bld.new_block();
        let join = bld.new_block();
        let cr: Reg = c.into();
        bld.cond_br(Cond::Eq, cr, cr, a, b);
        bld.switch_to(a);
        bld.cond_br(Cond::Ne, cr, cr, a, join); // self-loop on a
        bld.switch_to(b);
        bld.br(join);
        bld.switch_to(join);
        bld.ret(None);
        let f = bld.finish();
        (f, BlockId(0), a, b, join)
    }

    #[test]
    fn idoms_of_diamond() {
        let (f, entry, a, b, join) = build();
        let d = Dominators::compute(&f);
        assert_eq!(d.idom(entry), None);
        assert_eq!(d.idom(a), Some(entry));
        assert_eq!(d.idom(b), Some(entry));
        assert_eq!(d.idom(join), Some(entry), "join's idom skips the arms");
    }

    #[test]
    fn dominates_is_reflexive_and_transitive() {
        let (f, entry, a, _b, join) = build();
        let d = Dominators::compute(&f);
        assert!(d.dominates(entry, entry));
        assert!(d.dominates(entry, a));
        assert!(d.dominates(entry, join));
        assert!(!d.dominates(a, join));
        assert!(!d.dominates(join, a));
    }

    #[test]
    fn unreachable_block_not_dominated() {
        let (mut f, entry, ..) = build();
        f.blocks.push(crate::block::BasicBlock::new());
        f.blocks[4].insts.push(crate::inst::Inst::Ret { value: None });
        f.recompute_cfg();
        let d = Dominators::compute(&f);
        assert_eq!(d.idom(BlockId(4)), None);
        assert!(!d.dominates(entry, BlockId(4)));
    }

    #[test]
    fn linear_chain_dominators() {
        let mut bld = FunctionBuilder::new("f");
        let b1 = bld.new_block();
        let b2 = bld.new_block();
        bld.br(b1);
        bld.switch_to(b1);
        bld.br(b2);
        bld.switch_to(b2);
        bld.ret(None);
        let f = bld.finish();
        let d = Dominators::compute(&f);
        assert_eq!(d.idom(b1), Some(BlockId(0)));
        assert_eq!(d.idom(b2), Some(b1));
        assert!(d.dominates(b1, b2));
    }
}
