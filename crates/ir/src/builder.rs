//! A convenience builder for constructing [`Function`]s.
//!
//! The builder keeps a *current block*, appends instructions to it, and
//! seals the CFG (recomputing edges) on [`FunctionBuilder::finish`].

use crate::block::{BasicBlock, BlockId};
use crate::function::Function;
use crate::inst::{BinOp, Cond, Inst, SpillSlot};
use crate::reg::{Reg, RegClass, VReg};

/// Incremental builder of a [`Function`].
///
/// ```
/// use dra_ir::{FunctionBuilder, BinOp, Cond, Reg};
///
/// // `for (i = 0; i < 10; i++) acc += i;`
/// let mut b = FunctionBuilder::new("sum");
/// let i = b.new_vreg();
/// let acc = b.new_vreg();
/// b.mov_imm(i, 0);
/// b.mov_imm(acc, 0);
/// let header = b.new_block();
/// let body = b.new_block();
/// let exit = b.new_block();
/// b.br(header);
/// b.switch_to(header);
/// let ten = b.new_vreg();
/// b.mov_imm(ten, 10);
/// b.cond_br(Cond::Lt, i.into(), ten.into(), body, exit);
/// b.switch_to(body);
/// b.bin(BinOp::Add, acc, acc.into(), i.into());
/// b.bin_imm(BinOp::Add, i, i.into(), 1);
/// b.br(header);
/// b.switch_to(exit);
/// b.ret(Some(acc.into()));
/// let f = b.finish();
/// assert_eq!(f.num_blocks(), 4);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    current: BlockId,
}

impl FunctionBuilder {
    /// Start building a function with a fresh entry block selected.
    pub fn new(name: impl Into<String>) -> Self {
        FunctionBuilder {
            func: Function::new(name),
            current: BlockId(0),
        }
    }

    /// Create a fresh integer virtual register.
    pub fn new_vreg(&mut self) -> VReg {
        self.func.new_vreg()
    }

    /// Create a fresh virtual register of `class`.
    pub fn new_vreg_of(&mut self, class: RegClass) -> VReg {
        self.func.new_vreg_of(class)
    }

    /// Declare a function parameter: a fresh vreg defined by a
    /// [`Inst::GetParam`] emitted into the *current* block (normally the
    /// entry, before any control flow).
    pub fn new_param(&mut self) -> VReg {
        let v = self.func.new_vreg();
        let index = self.func.params.len() as u8;
        self.func.params.push(v);
        self.push(Inst::GetParam {
            dst: v.into(),
            index,
        });
        v
    }

    /// Append a new, empty block and return its id (selection unchanged).
    pub fn new_block(&mut self) -> BlockId {
        self.func.blocks.push(BasicBlock::new());
        BlockId(self.func.blocks.len() as u32 - 1)
    }

    /// Select the block that subsequently emitted instructions go to.
    pub fn switch_to(&mut self, b: BlockId) {
        assert!(b.index() < self.func.blocks.len(), "no such block {b}");
        self.current = b;
    }

    /// The currently selected block.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Append an arbitrary instruction to the current block.
    pub fn push(&mut self, inst: Inst) {
        self.func.blocks[self.current.index()].insts.push(inst);
    }

    /// `dst = op(lhs, rhs)`.
    pub fn bin(&mut self, op: BinOp, dst: VReg, lhs: Reg, rhs: Reg) {
        self.push(Inst::Bin {
            op,
            dst: dst.into(),
            lhs,
            rhs,
        });
    }

    /// `dst = op(src, imm)`.
    pub fn bin_imm(&mut self, op: BinOp, dst: VReg, src: Reg, imm: i32) {
        self.push(Inst::BinImm {
            op,
            dst: dst.into(),
            src,
            imm,
        });
    }

    /// `dst = src`.
    pub fn mov(&mut self, dst: VReg, src: Reg) {
        self.push(Inst::Mov {
            dst: dst.into(),
            src,
        });
    }

    /// `dst = imm`.
    pub fn mov_imm(&mut self, dst: VReg, imm: i32) {
        self.push(Inst::MovImm {
            dst: dst.into(),
            imm,
        });
    }

    /// `dst = mem[base + offset]`.
    pub fn load(&mut self, dst: VReg, base: Reg, offset: i32) {
        self.push(Inst::Load {
            dst: dst.into(),
            base,
            offset,
        });
    }

    /// `mem[base + offset] = src`.
    pub fn store(&mut self, src: Reg, base: Reg, offset: i32) {
        self.push(Inst::Store { src, base, offset });
    }

    /// Reload from a spill slot.
    pub fn spill_load(&mut self, dst: VReg, slot: SpillSlot) {
        self.push(Inst::SpillLoad {
            dst: dst.into(),
            slot,
        });
    }

    /// Spill to a slot.
    pub fn spill_store(&mut self, src: Reg, slot: SpillSlot) {
        self.push(Inst::SpillStore { src, slot });
    }

    /// Unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.push(Inst::Br { target });
    }

    /// Conditional branch.
    pub fn cond_br(&mut self, cond: Cond, lhs: Reg, rhs: Reg, then_bb: BlockId, else_bb: BlockId) {
        self.push(Inst::CondBr {
            cond,
            lhs,
            rhs,
            then_bb,
            else_bb,
        });
    }

    /// Direct call to `callee` (program function index).
    pub fn call(&mut self, callee: u32, args: Vec<Reg>, ret: Option<VReg>) {
        self.push(Inst::Call {
            callee,
            args,
            ret: ret.map(Reg::from),
        });
    }

    /// Return.
    pub fn ret(&mut self, value: Option<Reg>) {
        self.push(Inst::Ret { value });
    }

    /// Seal the function: recompute CFG edges and return it.
    ///
    /// # Panics
    ///
    /// Panics if any reachable block lacks a terminator — such a function
    /// would fall off the end of a block.
    pub fn finish(mut self) -> Function {
        self.func.recompute_cfg();
        for b in self.func.reverse_postorder() {
            assert!(
                self.func.block(b).terminator().is_some(),
                "reachable block {b} of `{}` lacks a terminator",
                self.func.name
            );
        }
        self.func
    }

    /// Seal without the terminator check (for deliberately partial
    /// functions in tests).
    pub fn finish_unchecked(mut self) -> Function {
        self.func.recompute_cfg();
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        b.mov_imm(x, 5);
        b.ret(Some(x.into()));
        let f = b.finish();
        assert_eq!(f.num_blocks(), 1);
        assert_eq!(f.num_insts(), 2);
        assert_eq!(f.vreg_count, 1);
    }

    #[test]
    fn params_are_recorded() {
        let mut b = FunctionBuilder::new("f");
        let p = b.new_param();
        b.ret(Some(p.into()));
        let f = b.finish();
        assert_eq!(f.params, vec![p]);
    }

    #[test]
    #[should_panic(expected = "lacks a terminator")]
    fn unterminated_reachable_block_panics() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        b.mov_imm(x, 1);
        let _ = b.finish();
    }

    #[test]
    fn unchecked_finish_allows_partial() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        b.mov_imm(x, 1);
        let f = b.finish_unchecked();
        assert_eq!(f.num_insts(), 1);
    }

    #[test]
    fn multi_block_cfg_sealed() {
        let mut b = FunctionBuilder::new("f");
        let t = b.new_block();
        b.br(t);
        b.switch_to(t);
        b.ret(None);
        let f = b.finish();
        assert_eq!(f.block(BlockId(0)).succs, vec![t]);
        assert_eq!(f.block(t).preds, vec![BlockId(0)]);
    }

    #[test]
    #[should_panic(expected = "no such block")]
    fn switch_to_invalid_block_panics() {
        let mut b = FunctionBuilder::new("f");
        b.switch_to(BlockId(99));
    }
}
