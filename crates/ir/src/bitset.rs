//! Dense fixed-capacity bit containers used by the dataflow analyses and
//! the interference graph: a word-packed [`BitSet`] and a triangular
//! symmetric [`BitMatrix`].

/// A dense bit set over `0..capacity`.
///
/// Liveness runs over thousands of virtual registers per function; a dense
/// word-packed set keeps the transfer functions cache-friendly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// An empty set able to hold elements `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The capacity the set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Insert `i`; returns true if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.capacity, "bit {i} out of capacity {}", self.capacity);
        let (w, b) = (i / 64, i % 64);
        let old = self.words[w];
        self.words[w] |= 1 << b;
        old & (1 << b) == 0
    }

    /// Remove `i`; returns true if it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        let (w, b) = (i / 64, i % 64);
        let old = self.words[w];
        self.words[w] &= !(1 << b);
        old & (1 << b) != 0
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// `self |= other`; returns true if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | *b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// `self -= other` (set difference).
    pub fn subtract(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// Remove all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Re-initialize in place to an empty set over `0..capacity`,
    /// reusing the word buffer — the scratch-arena primitive: a pooled
    /// set `reset` to a new capacity is indistinguishable from
    /// [`BitSet::new`] but skips the allocation when the buffer is
    /// already large enough.
    pub fn reset(&mut self, capacity: usize) {
        let nw = capacity.div_ceil(64);
        self.words.clear();
        self.words.resize(nw, 0);
        self.capacity = capacity;
    }

    /// Overwrite `self` with the contents of `other` without reallocating.
    ///
    /// The scratch-buffer primitive of the worklist dataflow: capacities
    /// must match so the word vectors can be copied directly.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn copy_from(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.words.copy_from_slice(&other.words);
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no element is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterate over elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

/// A symmetric boolean matrix over `0..n`, stored as the lower triangle
/// (diagonal included) packed into `u64` words.
///
/// This is the interference-graph membership structure: `set`/`contains`
/// are O(1) word operations, the whole matrix costs `n(n+1)/2` bits —
/// `n = 1024` fits in 64 KiB — and, unlike a hash set of pairs, queries
/// touch exactly one cache line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitMatrix {
    words: Vec<u64>,
    n: usize,
}

impl BitMatrix {
    /// An empty symmetric relation over `0..n`.
    pub fn new(n: usize) -> Self {
        let bits = n * (n + 1) / 2;
        BitMatrix {
            words: vec![0; bits.div_ceil(64)],
            n,
        }
    }

    /// Number of rows/columns.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Re-initialize in place to an empty relation over `0..n`, reusing
    /// the word buffer (see [`BitSet::reset`]).
    pub fn reset(&mut self, n: usize) {
        let bits = n * (n + 1) / 2;
        self.words.clear();
        self.words.resize(bits.div_ceil(64), 0);
        self.n = n;
    }

    /// Bit index of the unordered pair `(a, b)` in the lower triangle.
    #[inline]
    fn bit(&self, a: usize, b: usize) -> usize {
        debug_assert!(a < self.n && b < self.n, "pair ({a},{b}) out of {}", self.n);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        hi * (hi + 1) / 2 + lo
    }

    /// Mark `a` and `b` as related; returns true if the pair was new.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if either index is out of range.
    #[inline]
    pub fn set(&mut self, a: usize, b: usize) -> bool {
        let i = self.bit(a, b);
        let (w, s) = (i / 64, i % 64);
        let old = self.words[w];
        self.words[w] |= 1 << s;
        old & (1 << s) == 0
    }

    /// Are `a` and `b` related? (Symmetric.)
    #[inline]
    pub fn contains(&self, a: usize, b: usize) -> bool {
        let i = self.bit(a, b);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of related pairs (unordered, diagonal included).
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no pair is related.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set whose capacity is one past the maximum element (or 0).
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129), "second insert reports not-new");
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert!(s.remove(129));
        assert!(!s.remove(129));
        assert!(!s.contains(129));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn union_reports_change() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        b.insert(42);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b), "second union is a no-op");
        assert!(a.contains(42));
    }

    #[test]
    fn subtract_removes() {
        let mut a = BitSet::new(10);
        a.insert(1);
        a.insert(2);
        let mut b = BitSet::new(10);
        b.insert(2);
        a.subtract(&b);
        assert!(a.contains(1));
        assert!(!a.contains(2));
    }

    #[test]
    fn iter_in_order_across_words() {
        let mut s = BitSet::new(200);
        for i in [3, 64, 65, 127, 128, 199] {
            s.insert(i);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64, 65, 127, 128, 199]);
    }

    #[test]
    fn from_iterator() {
        let s: BitSet = [5usize, 2, 9].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 5, 9]);
    }

    #[test]
    fn clear_and_empty() {
        let mut s = BitSet::new(8);
        assert!(s.is_empty());
        s.insert(7);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        BitSet::new(4).insert(4);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let s = BitSet::new(4);
        assert!(!s.contains(1000));
    }

    #[test]
    fn copy_from_overwrites() {
        let mut a = BitSet::new(70);
        a.insert(3);
        let mut b = BitSet::new(70);
        b.insert(69);
        a.copy_from(&b);
        assert!(!a.contains(3));
        assert!(a.contains(69));
    }

    #[test]
    fn matrix_set_contains_symmetric() {
        let mut m = BitMatrix::new(130);
        assert!(m.is_empty());
        assert!(m.set(3, 98));
        assert!(!m.set(98, 3), "second set reports not-new");
        assert!(m.contains(3, 98));
        assert!(m.contains(98, 3));
        assert!(!m.contains(3, 97));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn matrix_diagonal_and_bounds() {
        let mut m = BitMatrix::new(5);
        assert!(m.set(4, 4));
        assert!(m.contains(4, 4));
        assert!(!m.contains(0, 0));
        assert_eq!(m.dim(), 5);
    }

    #[test]
    fn matrix_dense_fill_has_no_collisions() {
        // Every unordered pair maps to a distinct bit.
        let n = 40;
        let mut m = BitMatrix::new(n);
        let mut count = 0;
        for a in 0..n {
            for b in a..n {
                assert!(m.set(a, b), "pair ({a},{b}) collided");
                count += 1;
            }
        }
        assert_eq!(m.len(), count);
        assert_eq!(count, n * (n + 1) / 2);
    }
}
