//! Parser totality: `parse_function`/`parse_program` must return
//! `Ok`/`Err` on *any* input — hostile text reaching a batch pipeline
//! (e.g. through `compile_and_run_source`) may never panic a worker.
//!
//! Three attack surfaces, escalating in structure:
//!
//! 1. arbitrary character soup;
//! 2. token soup assembled from the grammar's own vocabulary, which gets
//!    much deeper into the instruction parsers than random bytes do;
//! 3. mutations of a *valid* function's text — truncations, line swaps,
//!    and single-character edits — which exercise the error paths right
//!    at the boundary of well-formedness.

use dra_ir::parse::{parse_function, parse_program};
use dra_ir::{BinOp, FunctionBuilder, Inst, PReg};
use proptest::prelude::*;

fn valid_text() -> String {
    let mut b = FunctionBuilder::new("seed");
    let x = b.new_vreg();
    let y = b.new_vreg();
    b.mov_imm(x, 7);
    b.bin_imm(BinOp::Mul, y, x.into(), 3);
    let t = b.new_block();
    let e = b.new_block();
    let j = b.new_block();
    b.cond_br(dra_ir::Cond::Lt, x.into(), y.into(), t, e);
    b.switch_to(t);
    b.push(Inst::Mov {
        dst: PReg(0).into(),
        src: PReg(1).into(),
    });
    b.br(j);
    b.switch_to(e);
    b.br(j);
    b.switch_to(j);
    b.ret(Some(y.into()));
    b.finish().to_string()
}

/// ASCII soup including the grammar's structural characters, newlines,
/// and a few non-ASCII code points (slice boundaries!).
fn arb_text() -> impl Strategy<Value = String> {
    const PALETTE: &[char] = &[
        'f', 'n', ' ', '(', ')', '[', ']', ',', ':', ';', '#', '=', '-', '>', '.', '\n', '\t',
        'v', 'r', 'b', '0', '1', '9', 'a', 'z', '+', 'é', '→', '\u{0}',
    ];
    proptest::collection::vec(0usize..PALETTE.len(), 0..200)
        .prop_map(|ix| ix.into_iter().map(|i| PALETTE[i]).collect())
}

/// Fragments of the grammar's own vocabulary, recombined at random.
fn arb_token_soup() -> impl Strategy<Value = String> {
    const TOKENS: &[&str] = &[
        "fn ", "bb0:", "bb1:", "bb4000000000:", "v0", "v1", "v4294967295", "r0", "r300",
        "slot99999999", " = ", "mov", "add", "br", "br.lt", "->", "bb7", "ret", "call f",
        "call f99", "(", ")", "[", "]", ",", "#", "#-42", "set_last_reg.int", "spill", "reload",
        "param", "; freq=1e308", "\n", "    ",
    ];
    proptest::collection::vec(0usize..TOKENS.len(), 0..40)
        .prop_map(|ix| ix.into_iter().map(|i| TOKENS[i]).collect())
}

proptest! {
    #[test]
    fn parse_is_total_on_arbitrary_text(s in arb_text()) {
        let _ = parse_function(&s);
        let _ = parse_program(&s);
    }

    #[test]
    fn parse_is_total_on_token_soup(s in arb_token_soup()) {
        let _ = parse_function(&s);
        let _ = parse_program(&s);
    }

    #[test]
    fn parse_is_total_on_mutated_valid_text(
        cut in 0usize..2000,
        flip_at in 0usize..2000,
        flip_to in 32u8..127,
        drop_line in 0usize..40,
    ) {
        let text = valid_text();

        // Truncation (at a char boundary; the seed text is ASCII).
        let cut = cut.min(text.len());
        let _ = parse_function(&text[..cut]);

        // Single-character substitution.
        let mut chars: Vec<char> = text.chars().collect();
        if !chars.is_empty() {
            let at = flip_at % chars.len();
            chars[at] = flip_to as char;
            let mutated: String = chars.into_iter().collect();
            let _ = parse_function(&mutated);
            let _ = parse_program(&mutated);
        }

        // Whole-line deletion.
        let lines: Vec<&str> = text.lines().collect();
        if !lines.is_empty() {
            let at = drop_line % lines.len();
            let mutated: String = lines
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != at)
                .map(|(_, l)| format!("{l}\n"))
                .collect();
            let _ = parse_function(&mutated);
        }
    }
}

#[test]
fn parser_round_trips_the_seed() {
    let text = valid_text();
    let f = parse_function(&text).unwrap();
    assert_eq!(f.to_string(), text);
}
