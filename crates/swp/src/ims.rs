//! Iterative modulo scheduling (Rau, MICRO 1994).

use crate::ddg::{LoopDdg, OpKind};
use crate::mii::mii;
use dra_sim::VliwConfig;

/// A modulo schedule: issue cycle per op under initiation interval `ii`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// Initiation interval.
    pub ii: u32,
    /// Issue cycle of each op (flat time within one iteration).
    pub time: Vec<u32>,
    /// Schedule length (`max(time) + 1`).
    pub len: u32,
}

impl Schedule {
    /// Number of pipeline stages: `ceil(len / ii)`.
    pub fn stages(&self) -> u32 {
        self.len.div_ceil(self.ii).max(1)
    }
}

/// Schedule `ddg` on `machine`, trying initiation intervals from the MII
/// up to `max_ii`. Returns `None` if no schedule fits.
pub fn modulo_schedule(ddg: &LoopDdg, machine: &VliwConfig, max_ii: u32) -> Option<Schedule> {
    modulo_schedule_from(ddg, machine, 1, max_ii)
}

/// Like [`modulo_schedule`], but never below `min_ii` — used when the II
/// is deliberately raised to relieve register pressure (the paper notes
/// "we can increase the Initiation Interval (II) to reduce register
/// pressure which might avoid spills", Section 10.2).
pub fn modulo_schedule_from(
    ddg: &LoopDdg,
    machine: &VliwConfig,
    min_ii: u32,
    max_ii: u32,
) -> Option<Schedule> {
    if ddg.is_empty() {
        return Some(Schedule {
            ii: min_ii.max(1),
            time: Vec::new(),
            len: 1,
        });
    }
    let start = mii(ddg, machine).max(min_ii);
    if start > max_ii {
        return None;
    }
    for ii in start..=max_ii {
        if let Some(mut s) = try_ii(ddg, machine, ii) {
            sink(ddg, machine, &mut s);
            return Some(s);
        }
    }
    None
}

/// Lifetime-reducing post-pass: move each op as late as its consumers and
/// the modulo reservation table allow. Shorter producer-to-consumer gaps
/// mean fewer overlapping value copies — the schedule stays valid, the
/// register requirement drops.
fn sink(ddg: &LoopDdg, machine: &VliwConfig, s: &mut Schedule) {
    let n = ddg.len();
    for _ in 0..3 {
        let mut moved = false;
        // Latest ops first so downstream slack opens up before upstream.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&o| std::cmp::Reverse(s.time[o]));
        for op in order {
            // Ops with no consumers anchor the schedule; leave them.
            let mut latest = i64::MAX;
            for e in ddg.edges.iter().filter(|e| e.from == op && e.to != op) {
                let bound =
                    s.time[e.to] as i64 - e.latency as i64 + s.ii as i64 * e.distance as i64;
                latest = latest.min(bound);
            }
            if latest == i64::MAX || latest <= s.time[op] as i64 {
                continue;
            }
            let mut time: Vec<Option<u32>> = s.time.iter().map(|&t| Some(t)).collect();
            time[op] = None;
            let target = (s.time[op] as i64 + 1..=latest)
                .rev()
                .map(|t| t as u32)
                .find(|&t| resources_free(ddg, machine, &time, s.ii, op, t));
            if let Some(t) = target {
                s.time[op] = t;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    s.len = s.time.iter().max().copied().unwrap_or(0) + 1;
}

/// One IMS attempt at a fixed `ii` with an eviction budget.
fn try_ii(ddg: &LoopDdg, machine: &VliwConfig, ii: u32) -> Option<Schedule> {
    let n = ddg.len();
    let budget = (n as u32) * 8;
    let height = heights(ddg, ii);

    let mut time: Vec<Option<u32>> = vec![None; n];
    let mut prev_time: Vec<Option<u32>> = vec![None; n];
    let mut spent = 0u32;

    // Worklist ordered by height (priority).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(height[i]));
    let mut pending: Vec<usize> = order.clone();

    while let Some(op) = pending.first().copied() {
        if spent >= budget {
            return None;
        }
        spent += 1;
        pending.remove(0);

        // Earliest start from scheduled predecessors.
        let mut estart: i64 = 0;
        for e in ddg.edges.iter().filter(|e| e.to == op) {
            if let Some(tp) = time[e.from] {
                let lb = tp as i64 + e.latency as i64 - (ii as i64) * e.distance as i64;
                estart = estart.max(lb);
            }
        }
        let mut estart = estart.max(0) as u32;
        if let Some(pt) = prev_time[op] {
            // Rau's progress rule: don't re-place at the same slot forever.
            estart = estart.max(pt + 1);
        }

        // Find a resource-feasible slot within one II of estart.
        let slot = (estart..estart + ii)
            .find(|&t| resources_free(ddg, machine, &time, ii, op, t))
            .unwrap_or(estart);

        // Evict resource conflicts at the forced slot.
        if !resources_free(ddg, machine, &time, ii, op, slot) {
            let conflicting: Vec<usize> = (0..n)
                .filter(|&o| o != op)
                .filter(|&o| {
                    time[o].is_some_and(|t| {
                        t % ii == slot % ii && conflicts(ddg, machine, &time, ii, o, op, slot)
                    })
                })
                .collect();
            for o in conflicting {
                prev_time[o] = time[o];
                time[o] = None;
                insert_by_priority(&mut pending, o, &height);
            }
        }
        time[op] = Some(slot);

        // Evict already-scheduled successors whose constraint now breaks.
        // Self-edges are skipped: II >= RecMII guarantees a self-recurrence
        // can never be violated by its own placement.
        for e in ddg.edges.iter().filter(|e| e.from == op && e.to != op) {
            if let Some(ts) = time[e.to] {
                let lb = slot as i64 + e.latency as i64 - (ii as i64) * e.distance as i64;
                if (ts as i64) < lb {
                    prev_time[e.to] = time[e.to];
                    time[e.to] = None;
                    insert_by_priority(&mut pending, e.to, &height);
                }
            }
        }
    }

    let times: Vec<u32> = time.into_iter().map(|t| t.expect("all scheduled")).collect();
    // Final validation: every dependence satisfied.
    for e in &ddg.edges {
        let lb = times[e.from] as i64 + e.latency as i64 - (ii as i64) * e.distance as i64;
        if (times[e.to] as i64) < lb {
            return None;
        }
    }
    let len = times.iter().max().copied().unwrap_or(0) + 1;
    Some(Schedule { ii, time: times, len })
}

fn insert_by_priority(pending: &mut Vec<usize>, op: usize, height: &[i64]) {
    if pending.contains(&op) {
        return;
    }
    let pos = pending
        .iter()
        .position(|&o| height[o] < height[op])
        .unwrap_or(pending.len());
    pending.insert(pos, op);
}

/// Would scheduling `op` at `t` keep the modulo reservation table legal?
fn resources_free(
    ddg: &LoopDdg,
    machine: &VliwConfig,
    time: &[Option<u32>],
    ii: u32,
    op: usize,
    t: u32,
) -> bool {
    let row = t % ii;
    let mut alu = 0;
    let mut mem = 0;
    let mut total = 0;
    for (o, &ot) in time.iter().enumerate() {
        let Some(ot) = ot else { continue };
        if o == op || ot % ii != row {
            continue;
        }
        total += 1;
        match ddg.ops[o].kind {
            OpKind::Alu => alu += 1,
            OpKind::Mem => mem += 1,
        }
    }
    total += 1;
    match ddg.ops[op].kind {
        OpKind::Alu => alu += 1,
        OpKind::Mem => mem += 1,
    }
    alu <= machine.n_alus && mem <= machine.n_mem_ports && total <= machine.issue_width
}

fn conflicts(
    ddg: &LoopDdg,
    machine: &VliwConfig,
    time: &[Option<u32>],
    ii: u32,
    existing: usize,
    incoming: usize,
    t: u32,
) -> bool {
    // `existing` conflicts if it competes for the same resource class, or
    // if removing it alone would not free the row (issue-width pressure).
    let mut without = time.to_vec();
    without[existing] = None;
    !resources_free(ddg, machine, &without, ii, incoming, t)
        || ddg.ops[existing].kind == ddg.ops[incoming].kind
}

/// Priority = height: longest path from the op under `latency - II·dist`
/// weights (bounded relaxation).
fn heights(ddg: &LoopDdg, ii: u32) -> Vec<i64> {
    let n = ddg.len();
    let mut h = vec![0i64; n];
    for _ in 0..n.min(64) {
        let mut changed = false;
        for e in &ddg.edges {
            let w = e.latency as i64 - ii as i64 * e.distance as i64;
            if h[e.to] + w > h[e.from] {
                h[e.from] = h[e.to] + w;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddg::LoopOp;

    fn machine() -> VliwConfig {
        VliwConfig::default()
    }

    fn assert_valid(ddg: &LoopDdg, s: &Schedule) {
        for e in &ddg.edges {
            let lhs = s.time[e.to] as i64;
            let rhs = s.time[e.from] as i64 + e.latency as i64 - s.ii as i64 * e.distance as i64;
            assert!(lhs >= rhs, "dependence {e:?} violated");
        }
        // Modulo resource table legal.
        for row in 0..s.ii {
            let at_row: Vec<usize> = (0..ddg.len())
                .filter(|&o| s.time[o] % s.ii == row)
                .collect();
            let alu = at_row
                .iter()
                .filter(|&&o| ddg.ops[o].kind == OpKind::Alu)
                .count();
            let mem = at_row
                .iter()
                .filter(|&&o| ddg.ops[o].kind == OpKind::Mem)
                .count();
            assert!(alu <= machine().n_alus as usize);
            assert!(mem <= machine().n_mem_ports as usize);
            assert!(at_row.len() <= machine().issue_width as usize);
        }
    }

    #[test]
    fn dot_product_schedules_at_small_ii() {
        let d = LoopDdg::dot_product(100);
        let s = modulo_schedule(&d, &machine(), 64).expect("schedulable");
        assert_valid(&d, &s);
        assert!(s.ii <= 2, "tiny loop at II {}", s.ii);
        assert!(s.stages() >= 2, "pipelined across stages");
    }

    #[test]
    fn resource_bound_respected() {
        // 8 independent loads: 2 ports => II >= 4.
        let mut d = LoopDdg::new(10);
        for _ in 0..8 {
            d.add_op(LoopOp::load(3));
        }
        let s = modulo_schedule(&d, &machine(), 64).unwrap();
        assert_valid(&d, &s);
        assert_eq!(s.ii, 4);
    }

    #[test]
    fn recurrence_bound_respected() {
        let mut d = LoopDdg::new(10);
        let a = d.add_op(LoopOp::alu_lat(6));
        d.add_dep(a, a, 1);
        let s = modulo_schedule(&d, &machine(), 64).unwrap();
        assert_valid(&d, &s);
        assert_eq!(s.ii, 6);
    }

    #[test]
    fn chain_schedules_with_latency_gaps() {
        let mut d = LoopDdg::new(10);
        let a = d.add_op(LoopOp::load(3));
        let b = d.add_op(LoopOp::alu_lat(2));
        let c = d.add_op(LoopOp::store());
        d.add_dep(a, b, 0);
        d.add_dep(b, c, 0);
        let s = modulo_schedule(&d, &machine(), 64).unwrap();
        assert_valid(&d, &s);
        assert!(s.time[1] >= s.time[0] + 3);
        assert!(s.time[2] >= s.time[1] + 2);
    }

    #[test]
    fn empty_ddg_trivially_schedules() {
        let d = LoopDdg::new(1);
        let s = modulo_schedule(&d, &machine(), 8).unwrap();
        assert_eq!(s.ii, 1);
    }

    #[test]
    fn ii_floor_is_honored() {
        let d = LoopDdg::dot_product(10);
        let s = modulo_schedule_from(&d, &machine(), 9, 64).unwrap();
        assert!(s.ii >= 9, "II {} below the requested floor", s.ii);
        // And the floor composes with the cap.
        assert!(modulo_schedule_from(&d, &machine(), 9, 8).is_none());
    }

    #[test]
    fn sink_reduces_or_preserves_register_need() {
        // A load consumed late: without sinking its lifetime is huge.
        let mut d = LoopDdg::new(10);
        let ld = d.add_op(LoopOp::load(2));
        let mut prev = d.add_op(LoopOp::alu());
        for _ in 0..6 {
            let n = d.add_op(LoopOp::alu());
            d.add_dep(prev, n, 0);
            prev = n;
        }
        let sum = d.add_op(LoopOp::alu());
        d.add_dep(ld, sum, 0);
        d.add_dep(prev, sum, 0);
        let s = modulo_schedule(&d, &machine(), 64).unwrap();
        assert_valid(&d, &s);
        // The load must have been pushed toward its consumer: its issue
        // sits within its latency of the consumer's earliest legal read.
        assert!(
            s.time[sum] as i64 - s.time[ld] as i64 <= 4,
            "load at {} far from consumer at {}",
            s.time[ld],
            s.time[sum]
        );
    }

    #[test]
    fn infeasible_max_ii_returns_none() {
        let mut d = LoopDdg::new(10);
        let a = d.add_op(LoopOp::alu_lat(20));
        d.add_dep(a, a, 1); // needs II = 20
        assert!(modulo_schedule(&d, &machine(), 4).is_none());
    }

    #[test]
    fn bigger_loop_schedules_validly() {
        // A 20-op mixed loop with a few recurrences.
        let mut d = LoopDdg::new(50);
        let mut prev = None;
        for i in 0..20 {
            let op = if i % 4 == 0 {
                d.add_op(LoopOp::load(3))
            } else {
                d.add_op(LoopOp::alu())
            };
            if let Some(p) = prev {
                d.add_dep(p, op, 0);
            }
            if i % 7 == 0 {
                d.add_dep(op, op, 1);
            }
            prev = Some(op);
        }
        let s = modulo_schedule(&d, &machine(), 128).expect("schedulable");
        assert_valid(&d, &s);
    }
}
