//! Minimum initiation interval: resource-constrained (ResMII) and
//! recurrence-constrained (RecMII) bounds.

use crate::ddg::{LoopDdg, OpKind};
use dra_sim::VliwConfig;

/// Resource-constrained MII: each resource class must fit its ops in `II`
/// cycles.
pub fn res_mii(ddg: &LoopDdg, m: &VliwConfig) -> u32 {
    let alu_ops = ddg.ops.iter().filter(|o| o.kind == OpKind::Alu).count() as u32;
    let mem_ops = ddg.ops.iter().filter(|o| o.kind == OpKind::Mem).count() as u32;
    let total = ddg.len() as u32;
    let alu = alu_ops.div_ceil(m.n_alus.max(1));
    let mem = mem_ops.div_ceil(m.n_mem_ports.max(1));
    let issue = total.div_ceil(m.issue_width.max(1));
    alu.max(mem).max(issue).max(1)
}

/// Recurrence-constrained MII: the smallest `II` such that no dependence
/// cycle violates `Σ latency <= II · Σ distance`.
///
/// Checked via Bellman–Ford positive-cycle detection on edge weights
/// `latency - II · distance` (a positive cycle means `II` is infeasible).
pub fn rec_mii(ddg: &LoopDdg) -> u32 {
    if ddg.is_empty() {
        return 1;
    }
    // Upper bound: sum of all latencies (a cycle can't need more).
    let hi: u32 = ddg.edges.iter().map(|e| e.latency).sum::<u32>().max(1);
    let mut lo = 1u32;
    let mut hi = hi;
    // If even `hi` is infeasible there is a zero-distance cycle: malformed.
    assert!(
        ii_feasible(ddg, hi),
        "dependence cycle with zero total distance"
    );
    while lo < hi {
        let mid = (lo + hi) / 2;
        if ii_feasible(ddg, mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Is `II` consistent with every recurrence?
fn ii_feasible(ddg: &LoopDdg, ii: u32) -> bool {
    // Longest-path relaxation: dist[v] = max over edges; a value exceeding
    // n rounds of relaxation indicates a positive cycle.
    let n = ddg.len();
    let mut dist = vec![0i64; n];
    for round in 0..=n {
        let mut changed = false;
        for e in &ddg.edges {
            let w = e.latency as i64 - ii as i64 * e.distance as i64;
            if dist[e.from] + w > dist[e.to] {
                dist[e.to] = dist[e.from] + w;
                changed = true;
            }
        }
        if !changed {
            return true;
        }
        if round == n {
            return false; // still relaxing after n rounds: positive cycle
        }
    }
    true
}

/// The minimum initiation interval: `max(ResMII, RecMII)`.
pub fn mii(ddg: &LoopDdg, m: &VliwConfig) -> u32 {
    res_mii(ddg, m).max(rec_mii(ddg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddg::LoopOp;

    #[test]
    fn res_mii_counts_ports() {
        let mut d = LoopDdg::new(1);
        for _ in 0..6 {
            d.add_op(LoopOp::load(3));
        }
        let m = VliwConfig::default(); // 2 mem ports
        assert_eq!(res_mii(&d, &m), 3, "6 memory ops over 2 ports");
    }

    #[test]
    fn res_mii_counts_issue_width() {
        let mut d = LoopDdg::new(1);
        for _ in 0..9 {
            d.add_op(LoopOp::alu());
        }
        let m = VliwConfig {
            n_alus: 9, // ALUs unconstrained…
            ..VliwConfig::default()
        };
        assert_eq!(res_mii(&d, &m), 3, "…but only 4-wide issue");
    }

    #[test]
    fn rec_mii_of_simple_recurrence() {
        // acc = acc + x: 1-cycle latency, distance 1 => RecMII = 1.
        let d = LoopDdg::dot_product(1);
        assert_eq!(rec_mii(&d), 1);
    }

    #[test]
    fn rec_mii_of_long_recurrence() {
        // A 3-op cycle with total latency 7 and total distance 2:
        // RecMII = ceil(7/2) = 4.
        let mut d = LoopDdg::new(1);
        let a = d.add_op(LoopOp::alu_lat(3));
        let b = d.add_op(LoopOp::alu_lat(3));
        let c = d.add_op(LoopOp::alu_lat(1));
        d.add_dep(a, b, 0);
        d.add_dep(b, c, 1);
        d.add_dep(c, a, 1);
        assert_eq!(rec_mii(&d), 4);
    }

    #[test]
    fn acyclic_ddg_has_rec_mii_one() {
        let mut d = LoopDdg::new(1);
        let a = d.add_op(LoopOp::load(3));
        let b = d.add_op(LoopOp::alu());
        d.add_dep(a, b, 0);
        assert_eq!(rec_mii(&d), 1);
    }

    #[test]
    fn mii_takes_the_max() {
        let mut d = LoopDdg::new(1);
        // Heavy resource use + a slow recurrence.
        let a = d.add_op(LoopOp::alu_lat(10));
        d.add_dep(a, a, 1); // RecMII = 10
        for _ in 0..4 {
            d.add_op(LoopOp::load(3)); // ResMII(mem) = 2
        }
        let m = VliwConfig::default();
        assert_eq!(mii(&d, &m), 10);
    }

    #[test]
    #[should_panic(expected = "zero total distance")]
    fn zero_distance_cycle_rejected() {
        let mut d = LoopDdg::new(1);
        let a = d.add_op(LoopOp::alu());
        let b = d.add_op(LoopOp::alu());
        d.add_dep(a, b, 0);
        d.add_dep(b, a, 0);
        let _ = rec_mii(&d);
    }
}
