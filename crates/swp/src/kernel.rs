//! Kernel register requirements, spilling, and kernel synthesis.
//!
//! After modulo scheduling, each result value lives from its producer's
//! issue cycle until its last consumer's read — possibly several
//! iterations later. With modulo variable expansion, a value whose
//! lifetime spans `L` cycles occupies `ceil(L / II)` registers
//! simultaneously; the kernel's register requirement is the maximum,
//! over the II modulo cycles, of live register copies (MaxLive).
//!
//! When the requirement exceeds the available registers, a value is
//! spilled: its uses become loads fed through memory (Zalamea et al.'s
//! spill-and-reschedule flow, the paper's Figure 10).

use crate::ddg::{LoopDdg, LoopOp, OpKind};
use crate::ims::Schedule;
use dra_ir::{BinOp, Cond, Function, FunctionBuilder, Inst, PReg};

/// Lifetime of each result value under a schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lifetimes {
    /// `(start, end)` issue-cycle interval per op (`None` for resultless
    /// ops); `end >= start`; the value is live during `[start, end)`.
    pub intervals: Vec<Option<(u32, u32)>>,
}

/// Compute value lifetimes: producer issue to last consumer read
/// (`consumer_time + II * distance`).
pub fn lifetimes(ddg: &LoopDdg, s: &Schedule) -> Lifetimes {
    let intervals = (0..ddg.len())
        .map(|op| {
            if !ddg.ops[op].has_result {
                return None;
            }
            let start = s.time[op];
            let mut end = start + ddg.ops[op].latency;
            for e in ddg.consumers(op) {
                let read = s.time[e.to] + s.ii * e.distance + 1;
                end = end.max(read);
            }
            Some((start, end))
        })
        .collect();
    Lifetimes { intervals }
}

/// MaxLive: maximum, over the II modulo cycles, of simultaneously live
/// register copies (counting one register per in-flight iteration lap).
pub fn max_live(ddg: &LoopDdg, s: &Schedule) -> usize {
    let lt = lifetimes(ddg, s);
    let mut per_slot = vec![0usize; s.ii as usize];
    for iv in lt.intervals.iter().flatten() {
        for t in iv.0..iv.1 {
            per_slot[(t % s.ii) as usize] += 1;
        }
    }
    per_slot.into_iter().max().unwrap_or(0)
}

/// Registers needed per value (`ceil(L / II)` copies, modulo variable
/// expansion).
pub fn regs_per_value(ddg: &LoopDdg, s: &Schedule) -> Vec<u32> {
    let lt = lifetimes(ddg, s);
    lt.intervals
        .iter()
        .map(|iv| match iv {
            Some((a, b)) => (b - a).div_ceil(s.ii).max(1),
            None => 0,
        })
        .collect()
}

/// Spill the value produced by `op`: its consumers now read through
/// memory. Adds one store after the producer and one load per consumer,
/// shortening the value's register lifetime to producer → store.
///
/// # Panics
///
/// Panics if `op` has no result.
pub fn spill_value(ddg: &mut LoopDdg, op: usize, mem_latency: u32) -> usize {
    assert!(ddg.ops[op].has_result, "op {op} has no result to spill");
    let store = ddg.add_op(LoopOp::store());
    let consumer_edges: Vec<usize> = ddg
        .edges
        .iter()
        .enumerate()
        .filter(|(_, e)| e.from == op && e.to != store)
        .map(|(i, _)| i)
        .collect();
    let mut added = 1;
    // Producer -> store (register lifetime now ends here).
    let prod_latency = ddg.ops[op].latency;
    ddg.edges.push(crate::ddg::DepEdge {
        from: op,
        to: store,
        latency: prod_latency,
        distance: 0,
    });
    // Each consumer reads a fresh load fed by the store through memory;
    // the original producer -> consumer edge becomes load -> consumer.
    for ei in consumer_edges {
        let (to, distance) = (ddg.edges[ei].to, ddg.edges[ei].distance);
        let load = ddg.add_op(LoopOp::load(mem_latency));
        added += 1;
        // store -> load: memory dependence carries the iteration distance.
        ddg.edges.push(crate::ddg::DepEdge {
            from: store,
            to: load,
            latency: 1,
            distance,
        });
        ddg.edges[ei] = crate::ddg::DepEdge {
            from: load,
            to,
            latency: mem_latency,
            distance: 0,
        };
    }
    added
}

/// A register allocation of the kernel plus the synthesized kernel
/// function used for differential remapping and encoding.
#[derive(Clone, Debug)]
pub struct KernelAlloc {
    /// First register assigned to each value (`None` for resultless ops).
    pub reg_of: Vec<Option<u8>>,
    /// Total registers used.
    pub regs_used: usize,
    /// The kernel synthesized as a single-loop IR function (fully
    /// physical), suitable for `dra_regalloc::remap_function` and
    /// `dra_encoding::insert_set_last_reg`.
    pub func: Function,
}

/// Assign registers to values via cyclic interval coloring over the
/// modulo-variable-expanded steady state, then synthesize the kernel as an
/// IR loop.
///
/// With unroll factor `K = max ceil(L/II)`, the steady state repeats with
/// period `P = K·II`; each value contributes `K` circular arcs of length
/// `L` on that circle (one per in-flight iteration copy). Greedy
/// lowest-free-register coloring of the arcs yields an allocation close to
/// MaxLive.
///
/// Returns `None` when more than `reg_n` registers would be needed.
pub fn allocate_kernel(ddg: &LoopDdg, s: &Schedule, reg_n: u16) -> Option<KernelAlloc> {
    let per_value = regs_per_value(ddg, s);
    let lt = lifetimes(ddg, s);
    let kmax = per_value.iter().copied().max().unwrap_or(1).max(1);
    let p = (kmax * s.ii) as u64;

    // Arcs: (start, len, value, copy).
    let mut arcs: Vec<(u64, u64, usize)> = Vec::new();
    for (op, iv) in lt.intervals.iter().enumerate() {
        let Some((a, b)) = *iv else { continue };
        let len = ((b - a) as u64).max(1).min(p);
        for k in 0..kmax as u64 {
            let start = (a as u64 + k * s.ii as u64) % p;
            arcs.push((start, len, op));
        }
    }
    arcs.sort();

    // Greedy circular-arc coloring: lowest register free over the arc.
    let overlaps = |a: (u64, u64), b: (u64, u64)| -> bool {
        // Circular intervals [a.0, a.0+a.1), [b.0, b.0+b.1) on circle p.
        if a.1 >= p || b.1 >= p {
            return true;
        }
        let d = (b.0 + p - a.0) % p;
        d < a.1 || (p - d) < b.1
    };
    let limit = (reg_n as usize).min(64);
    let mut occupancy: Vec<Vec<(u64, u64)>> = vec![Vec::new(); limit];
    let mut reg_of: Vec<Option<u8>> = vec![None; ddg.len()];
    let mut regs_used = 0usize;
    for &(start, len, op) in &arcs {
        let r = (0..limit).find(|&r| {
            occupancy[r].iter().all(|&o| !overlaps(o, (start, len)))
        })?;
        occupancy[r].push((start, len));
        regs_used = regs_used.max(r + 1);
        // The kernel names the current iteration's copy; record the first
        // register each value receives for synthesis purposes.
        if reg_of[op].is_none() {
            reg_of[op] = Some(r as u8);
        }
    }

    // Synthesize: entry -> kernel (self-loop) -> exit. Ops in issue order.
    let mut order: Vec<usize> = (0..ddg.len()).collect();
    order.sort_by_key(|&o| s.time[o]);

    let mut b = FunctionBuilder::new("kernel");
    let kernel = b.new_block();
    let exit = b.new_block();
    b.br(kernel);
    b.switch_to(kernel);
    let scratch = PReg(0); // base/address register stand-in
    for &op in &order {
        let srcs: Vec<u8> = ddg
            .edges
            .iter()
            .filter(|e| e.to == op)
            .filter_map(|e| reg_of[e.from])
            .take(2)
            .collect();
        let dst = reg_of[op];
        let inst = match (ddg.ops[op].kind, dst) {
            (OpKind::Mem, Some(d)) => Inst::Load {
                dst: PReg(d).into(),
                base: PReg(srcs.first().copied().unwrap_or(scratch.0)).into(),
                offset: 0,
            },
            (OpKind::Mem, None) => Inst::Store {
                src: PReg(srcs.first().copied().unwrap_or(scratch.0)).into(),
                base: PReg(srcs.get(1).copied().unwrap_or(scratch.0)).into(),
                offset: 0,
            },
            (OpKind::Alu, Some(d)) => Inst::Bin {
                op: BinOp::Add,
                dst: PReg(d).into(),
                lhs: PReg(srcs.first().copied().unwrap_or(scratch.0)).into(),
                rhs: PReg(srcs.get(1).copied().unwrap_or_else(|| {
                    srcs.first().copied().unwrap_or(scratch.0)
                }))
                .into(),
            },
            (OpKind::Alu, None) => Inst::Nop,
        };
        b.push(inst);
    }
    b.cond_br(
        Cond::Lt,
        scratch.into(),
        PReg(regs_used.saturating_sub(1) as u8).into(),
        kernel,
        exit,
    );
    b.switch_to(exit);
    b.ret(None);
    let mut func = b.finish();
    func.blocks[kernel.index()].freq = ddg.trip_count as f64;

    Some(KernelAlloc {
        reg_of,
        regs_used,
        func,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ims::modulo_schedule;
    use dra_sim::VliwConfig;

    fn sched(d: &LoopDdg) -> Schedule {
        modulo_schedule(d, &VliwConfig::default(), 256).expect("schedulable")
    }

    #[test]
    fn lifetimes_cover_consumers() {
        let d = LoopDdg::dot_product(10);
        let s = sched(&d);
        let lt = lifetimes(&d, &s);
        // The mul result is read by acc.
        let (mstart, mend) = lt.intervals[2].unwrap();
        assert!(mend > mstart);
        assert!(mend as i64 > s.time[3] as i64, "covers acc's read");
        // The store-free loop has 4 result-bearing values.
        assert_eq!(lt.intervals.iter().flatten().count(), 4);
    }

    #[test]
    fn loop_carried_lifetime_spans_iterations() {
        // acc feeds itself at distance 1: lifetime >= II.
        let d = LoopDdg::dot_product(10);
        let s = sched(&d);
        let lt = lifetimes(&d, &s);
        let (astart, aend) = lt.intervals[3].unwrap();
        assert!(aend - astart >= s.ii, "loop-carried value outlives one II");
    }

    #[test]
    fn max_live_positive_and_consistent() {
        let d = LoopDdg::dot_product(10);
        let s = sched(&d);
        let ml = max_live(&d, &s);
        let total: u32 = regs_per_value(&d, &s).iter().sum();
        assert!(ml >= 1);
        assert!(ml <= total as usize, "MaxLive bounded by MVE total");
    }

    #[test]
    fn wide_loop_needs_many_registers() {
        // 16 independent long-latency loads all consumed late: many
        // overlapping lifetimes.
        let mut d = LoopDdg::new(10);
        let loads: Vec<_> = (0..16).map(|_| d.add_op(LoopOp::load(8))).collect();
        let sum = d.add_op(LoopOp::alu());
        for &l in &loads {
            d.add_dep(l, sum, 0);
        }
        let s = sched(&d);
        assert!(max_live(&d, &s) >= 8, "got {}", max_live(&d, &s));
    }

    #[test]
    fn spilling_reduces_register_need() {
        let mut d = LoopDdg::new(10);
        let loads: Vec<_> = (0..12).map(|_| d.add_op(LoopOp::load(8))).collect();
        let sum = d.add_op(LoopOp::alu());
        for &l in &loads {
            d.add_dep(l, sum, 0);
        }
        let s = sched(&d);
        let before = max_live(&d, &s);
        // Spill the longest-lived load.
        let lt = lifetimes(&d, &s);
        let victim = (0..loads.len())
            .max_by_key(|&i| {
                let (a, b) = lt.intervals[i].unwrap();
                b - a
            })
            .unwrap();
        spill_value(&mut d, victim, 3);
        let s2 = sched(&d);
        let after = max_live(&d, &s2);
        assert!(after <= before, "spill did not increase need: {before} -> {after}");
    }

    #[test]
    fn spill_adds_store_and_loads() {
        let mut d = LoopDdg::dot_product(10);
        let before_ops = d.len();
        let added = spill_value(&mut d, 2, 3); // spill the mul result
        assert_eq!(added, 2, "one store + one load for the single consumer");
        assert_eq!(d.len(), before_ops + 2);
        // DDG still schedulable and valid.
        let s = sched(&d);
        assert!(s.ii >= 1);
    }

    #[test]
    fn kernel_allocation_assigns_disjoint_ranges() {
        let d = LoopDdg::dot_product(10);
        let s = sched(&d);
        let ka = allocate_kernel(&d, &s, 32).expect("fits in 32 registers");
        let regs: Vec<u8> = ka.reg_of.iter().flatten().copied().collect();
        let mut sorted = regs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), regs.len(), "distinct base registers");
        assert!(ka.regs_used <= 32);
        assert!(ka.func.is_fully_physical());
    }

    #[test]
    fn kernel_allocation_fails_when_too_tight() {
        let mut d = LoopDdg::new(10);
        let loads: Vec<_> = (0..16).map(|_| d.add_op(LoopOp::load(8))).collect();
        let sum = d.add_op(LoopOp::alu());
        for &l in &loads {
            d.add_dep(l, sum, 0);
        }
        let s = sched(&d);
        assert!(allocate_kernel(&d, &s, 4).is_none());
    }

    #[test]
    fn synthesized_kernel_is_a_self_loop() {
        let d = LoopDdg::dot_product(10);
        let s = sched(&d);
        let ka = allocate_kernel(&d, &s, 32).unwrap();
        let kernel_block = &ka.func.blocks[1];
        assert!(kernel_block.succs.contains(&dra_ir::BlockId(1)), "self edge");
        assert_eq!(kernel_block.freq, 10.0, "trip count as frequency");
    }
}
