//! The full software-pipelining flow (the paper's Figure 10 plus the
//! Section 8.1 differential integration).
//!
//! 1. Modulo-schedule the loop at the minimum II.
//! 2. If the kernel's register requirement exceeds `reg_n`, spill the
//!    longest-lived value and reschedule (spills occupy memory ports, so
//!    the II may grow — exactly the effect Table 2 measures).
//! 3. Allocate kernel registers (modulo variable expansion).
//! 4. If `reg_n > diff_n`, the extra registers are only addressable
//!    through differential encoding: run **differential remapping** on the
//!    synthesized kernel and insert `set_last_reg` repairs, all promoted
//!    before the kernel so the schedule itself is untouched.

use crate::ddg::LoopDdg;
use crate::ims::{modulo_schedule, modulo_schedule_from, Schedule};
use crate::kernel::{allocate_kernel, lifetimes, max_live, spill_value};
use dra_adjgraph::DiffParams;
use dra_encoding::{insert_set_last_reg, EncodingConfig};
use dra_regalloc::{remap_function, RemapConfig, RemapStrategy};
use dra_sim::{loop_cycles, VliwConfig};

/// Configuration of the pipelining flow.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// The VLIW machine.
    pub machine: VliwConfig,
    /// Registers available to the kernel (the paper sweeps 32..64).
    pub reg_n: u16,
    /// Registers addressable directly (32 on the 5-bit-field LEAF32).
    pub diff_n: u16,
    /// Memory latency charged to spill loads.
    pub mem_latency: u32,
    /// Scheduling II cap.
    pub max_ii: u32,
    /// Spill-iteration cap.
    pub max_spills: u32,
    /// Worker threads for the kernel remapping restarts (`0` = one per
    /// CPU; the result is identical at any thread count).
    pub remap_threads: usize,
    /// Search strategy for the kernel remapping pass.
    pub remap_strategy: RemapStrategy,
    /// Replay the repaired kernel's register fields through the symbolic
    /// checker ([`dra_regalloc::check_function_encoding`]) after decode
    /// verification; a rejection is a [`PipelineError::Check`]. Off by
    /// default.
    pub check: bool,
}

impl PipelineConfig {
    /// The paper's high-end setup with `reg_n` registers (`DiffN = 32`).
    pub fn highend(reg_n: u16) -> Self {
        PipelineConfig {
            machine: VliwConfig::default(),
            reg_n,
            diff_n: 32,
            mem_latency: 3,
            max_ii: 512,
            max_spills: 256,
            remap_threads: 0,
            remap_strategy: RemapStrategy::Greedy,
            check: false,
        }
    }
}

/// Result of pipelining one loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipelinedLoop {
    /// Final initiation interval.
    pub ii: u32,
    /// Pipeline stages.
    pub stages: u32,
    /// Register requirement before any spilling.
    pub max_live_initial: usize,
    /// Register requirement of the final schedule.
    pub max_live_final: usize,
    /// Spill operations added to the DDG.
    pub spill_ops: usize,
    /// `set_last_reg` instructions promoted before the kernel.
    pub set_last_regs: usize,
    /// Total cycles for the loop's trip count.
    pub cycles: u64,
    /// Kernel instructions (code-size accounting).
    pub kernel_ops: usize,
    /// Whether differential encoding was enabled for this loop
    /// (Section 8.2 selective enabling).
    pub differential_enabled: bool,
}

/// Errors from the pipelining flow.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PipelineError {
    /// No schedule found within the II cap.
    Unschedulable,
    /// Spilling failed to bring the requirement under `reg_n`.
    SpillLimit,
    /// The symbolic checker rejected the repaired kernel
    /// ([`PipelineConfig::check`]); carries the checker's diagnostic.
    Check(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Unschedulable => write!(f, "no modulo schedule within the II cap"),
            PipelineError::SpillLimit => write!(f, "spilling failed to fit the register file"),
            PipelineError::Check(e) => write!(f, "checker rejected the kernel: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Pipeline one loop end to end.
///
/// # Errors
///
/// See [`PipelineError`].
pub fn pipeline_loop(ddg: &LoopDdg, cfg: &PipelineConfig) -> Result<PipelinedLoop, PipelineError> {
    let mut work = ddg.clone();
    let mut spill_ops = 0usize;
    let mut ii_floor = 1u32;

    let first = modulo_schedule(&work, &cfg.machine, cfg.max_ii)
        .ok_or(PipelineError::Unschedulable)?;
    let max_live_initial = max_live(&work, &first);
    let mut schedule: Schedule = first;

    // Fit the register file: spill long-lived values while profitable;
    // when no lifetime exceeds the II (spilling can't shorten anything),
    // raise the II instead — both escape hatches the paper names.
    // Selective enabling (Section 8.2), decided once from the initial
    // requirement: a loop that fits the direct window is compiled
    // entirely within it — the same spill/II path as on the
    // `reg_n = diff_n` baseline — so its result cannot depend on the
    // sweep point. Without the cap, the greedy arc coloring's overshoot
    // of MaxLive can borrow differential-only registers for a loop that
    // needs none, silently enabling differential encoding with a repair
    // count that varies by `reg_n`.
    let direct_n = cfg.diff_n.min(cfg.reg_n);
    let limit = if max_live_initial > direct_n as usize {
        cfg.reg_n
    } else {
        direct_n
    };
    let mut alloc = None;
    for _ in 0..cfg.max_spills + cfg.max_ii {
        if max_live(&work, &schedule) <= limit as usize {
            alloc = allocate_kernel(&work, &schedule, limit);
            if alloc.is_some() {
                break;
            }
        }
        let lt = lifetimes(&work, &schedule);
        let victim = (0..work.len())
            .filter_map(|op| lt.intervals[op].map(|(a, b)| (op, b - a)))
            .filter(|&(_, len)| len > schedule.ii)
            .max_by_key(|&(_, len)| len)
            .map(|(op, _)| op);
        match victim {
            Some(op) => {
                spill_ops += spill_value(&mut work, op, cfg.mem_latency);
            }
            None if schedule.ii < cfg.max_ii => {
                ii_floor = schedule.ii + 1;
            }
            None => return Err(PipelineError::SpillLimit),
        }
        schedule = modulo_schedule_from(&work, &cfg.machine, ii_floor, cfg.max_ii)
            .ok_or(PipelineError::Unschedulable)?;
    }
    let max_live_final = max_live(&work, &schedule);
    let Some(mut alloc) = alloc else {
        return Err(PipelineError::SpillLimit);
    };

    // Differential encoding, enabled only when extra registers are in use
    // (Section 8.2): loops that fit in diff_n registers stay direct.
    let differential_enabled = alloc.regs_used > cfg.diff_n as usize;
    let set_last_regs = if differential_enabled {
        let params = DiffParams::new(cfg.reg_n, cfg.diff_n.min(cfg.reg_n));
        let mut remap_cfg = RemapConfig::new(params);
        remap_cfg.starts = 32; // kernels are small; a few restarts suffice
        remap_cfg.threads = cfg.remap_threads;
        remap_cfg.strategy = cfg.remap_strategy;
        remap_function(&mut alloc.func, &remap_cfg);
        let enc = EncodingConfig::new(params);
        let stats = insert_set_last_reg(&mut alloc.func, &enc);
        dra_encoding::verify_function(&alloc.func, &enc)
            .expect("repaired kernel decodes");
        if cfg.check {
            dra_regalloc::check_function_encoding(&alloc.func, &enc)
                .map_err(|e| PipelineError::Check(e.to_string()))?;
        }
        stats.inserted
    } else {
        0
    };

    let cycles = loop_cycles(
        &cfg.machine,
        schedule.ii,
        schedule.stages(),
        work.trip_count,
        set_last_regs as u32,
    );

    Ok(PipelinedLoop {
        ii: schedule.ii,
        stages: schedule.stages(),
        max_live_initial,
        max_live_final,
        spill_ops,
        set_last_regs,
        cycles,
        kernel_ops: work.len(),
        differential_enabled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddg::LoopOp;

    /// A loop whose MaxLive exceeds 32: many long-latency loads with late
    /// consumers.
    fn hungry_loop(width: usize, trip: u64) -> LoopDdg {
        let mut d = LoopDdg::new(trip);
        let loads: Vec<_> = (0..width).map(|_| d.add_op(LoopOp::load(12))).collect();
        let mut accs = Vec::new();
        for pair in loads.chunks(2) {
            let a = d.add_op(LoopOp::alu_lat(4));
            for &l in pair {
                d.add_dep(l, a, 0);
            }
            accs.push(a);
        }
        let sum = d.add_op(LoopOp::alu());
        for &a in &accs {
            d.add_dep(a, sum, 0);
        }
        d.add_dep(sum, sum, 1);
        d
    }

    #[test]
    fn small_loop_needs_no_differential() {
        let d = LoopDdg::dot_product(1000);
        let r = pipeline_loop(&d, &PipelineConfig::highend(32)).unwrap();
        assert!(!r.differential_enabled);
        assert_eq!(r.set_last_regs, 0);
        assert_eq!(r.spill_ops, 0);
        assert!(r.cycles >= 1000);
    }

    #[test]
    fn hungry_loop_spills_at_32_but_not_at_64() {
        let d = hungry_loop(24, 1000);
        let at32 = pipeline_loop(&d, &PipelineConfig::highend(32)).unwrap();
        let at64 = pipeline_loop(&d, &PipelineConfig::highend(64)).unwrap();
        assert!(
            at32.max_live_initial > 32,
            "workload must exceed 32 registers (got {})",
            at32.max_live_initial
        );
        assert!(at32.spill_ops > 0, "32-register run must spill");
        assert!(
            at64.spill_ops < at32.spill_ops,
            "more registers, fewer spills"
        );
        assert!(at64.cycles <= at32.cycles, "fewer spills, no slower");
    }

    #[test]
    fn differential_kernel_counts_set_last_regs() {
        let d = hungry_loop(24, 1000);
        let r = pipeline_loop(&d, &PipelineConfig::highend(64)).unwrap();
        if r.differential_enabled {
            // Repairs exist but are bounded by kernel size.
            assert!(r.set_last_regs <= r.kernel_ops * 3 + 1);
        }
    }

    #[test]
    fn checked_pipeline_matches_unchecked() {
        let d = hungry_loop(24, 1000);
        let plain = pipeline_loop(&d, &PipelineConfig::highend(64)).unwrap();
        let mut cfg = PipelineConfig::highend(64);
        cfg.check = true;
        let checked = pipeline_loop(&d, &cfg).unwrap();
        assert!(checked.differential_enabled, "workload must go differential");
        assert_eq!(plain, checked, "the checker must not perturb the result");
    }

    #[test]
    fn speedup_grows_then_saturates_with_reg_n() {
        let d = hungry_loop(28, 10_000);
        let base = pipeline_loop(&d, &PipelineConfig::highend(32)).unwrap();
        let mut last_cycles = base.cycles;
        for reg_n in [40u16, 48, 56, 64] {
            let r = pipeline_loop(&d, &PipelineConfig::highend(reg_n)).unwrap();
            // Near-monotone: once spills are gone the only variation left
            // is a handful of promoted set_last_reg fetch slots.
            assert!(
                r.cycles <= last_cycles + 16,
                "RegN={reg_n}: {} far above {last_cycles}",
                r.cycles
            );
            last_cycles = last_cycles.min(r.cycles);
        }
        assert!(
            last_cycles < base.cycles,
            "extra registers must pay off on a hungry loop"
        );
    }

    #[test]
    fn unschedulable_loop_reports_error() {
        let mut d = LoopDdg::new(10);
        let a = d.add_op(LoopOp::alu_lat(100));
        d.add_dep(a, a, 1);
        let mut cfg = PipelineConfig::highend(32);
        cfg.max_ii = 8;
        assert_eq!(
            pipeline_loop(&d, &cfg),
            Err(PipelineError::Unschedulable)
        );
    }
}
