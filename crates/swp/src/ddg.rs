//! Loop data-dependence graphs (DDGs) for modulo scheduling.

/// Functional-unit class an operation occupies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Integer/FP ALU operation.
    Alu,
    /// Memory access (load/store) — occupies a memory port.
    Mem,
}

/// One operation of the loop body.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoopOp {
    /// Resource class.
    pub kind: OpKind,
    /// Result latency in cycles.
    pub latency: u32,
    /// Whether the op produces a register result (stores do not).
    pub has_result: bool,
}

impl LoopOp {
    /// A 1-cycle ALU op with a result.
    pub fn alu() -> Self {
        LoopOp {
            kind: OpKind::Alu,
            latency: 1,
            has_result: true,
        }
    }

    /// An ALU op with custom latency (multiplies etc.).
    pub fn alu_lat(latency: u32) -> Self {
        LoopOp {
            kind: OpKind::Alu,
            latency,
            has_result: true,
        }
    }

    /// A load (memory port, produces a value).
    pub fn load(latency: u32) -> Self {
        LoopOp {
            kind: OpKind::Mem,
            latency,
            has_result: true,
        }
    }

    /// A store (memory port, no register result).
    pub fn store() -> Self {
        LoopOp {
            kind: OpKind::Mem,
            latency: 1,
            has_result: false,
        }
    }
}

/// A dependence edge `from -> to`: `to` must issue at least `latency`
/// cycles after `from`, `distance` iterations later (`distance = 0` for
/// intra-iteration dependences, `> 0` for loop-carried recurrences).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DepEdge {
    /// Producer op index.
    pub from: usize,
    /// Consumer op index.
    pub to: usize,
    /// Result latency of the dependence.
    pub latency: u32,
    /// Iteration distance (Ω).
    pub distance: u32,
}

/// A loop body as a dependence graph.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LoopDdg {
    /// Operations of one iteration.
    pub ops: Vec<LoopOp>,
    /// Dependences.
    pub edges: Vec<DepEdge>,
    /// Estimated trip count (for cycle accounting).
    pub trip_count: u64,
}

impl LoopDdg {
    /// An empty DDG with the given trip count.
    pub fn new(trip_count: u64) -> Self {
        LoopDdg {
            ops: Vec::new(),
            edges: Vec::new(),
            trip_count,
        }
    }

    /// Add an op, returning its index.
    pub fn add_op(&mut self, op: LoopOp) -> usize {
        self.ops.push(op);
        self.ops.len() - 1
    }

    /// Add a dependence edge; latency defaults to the producer's.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn add_dep(&mut self, from: usize, to: usize, distance: u32) {
        assert!(from < self.ops.len() && to < self.ops.len(), "bad edge");
        self.edges.push(DepEdge {
            from,
            to,
            latency: self.ops[from].latency,
            distance,
        });
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the DDG has no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Consumers of each op's result (`distance` included).
    pub fn consumers(&self, op: usize) -> impl Iterator<Item = &DepEdge> {
        self.edges.iter().filter(move |e| e.from == op)
    }

    /// The classic running example: a 4-op accumulation loop
    /// `acc += a[i] * b[i]` with a loop-carried dependence on `acc`.
    pub fn dot_product(trip_count: u64) -> LoopDdg {
        let mut d = LoopDdg::new(trip_count);
        let la = d.add_op(LoopOp::load(3));
        let lb = d.add_op(LoopOp::load(3));
        let mul = d.add_op(LoopOp::alu_lat(3));
        let acc = d.add_op(LoopOp::alu());
        d.add_dep(la, mul, 0);
        d.add_dep(lb, mul, 0);
        d.add_dep(mul, acc, 0);
        d.add_dep(acc, acc, 1); // recurrence: acc feeds next iteration
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let d = LoopDdg::dot_product(100);
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        assert_eq!(d.trip_count, 100);
        assert_eq!(d.consumers(2).count(), 1);
        let rec = d.edges.iter().find(|e| e.distance > 0).unwrap();
        assert_eq!(rec.from, rec.to, "accumulator self-recurrence");
    }

    #[test]
    fn op_constructors() {
        assert_eq!(LoopOp::alu().kind, OpKind::Alu);
        assert!(LoopOp::alu().has_result);
        assert!(!LoopOp::store().has_result);
        assert_eq!(LoopOp::store().kind, OpKind::Mem);
        assert_eq!(LoopOp::load(3).latency, 3);
        assert_eq!(LoopOp::alu_lat(5).latency, 5);
    }

    #[test]
    #[should_panic(expected = "bad edge")]
    fn bad_edge_rejected() {
        let mut d = LoopDdg::new(1);
        d.add_op(LoopOp::alu());
        d.add_dep(0, 5, 0);
    }
}
