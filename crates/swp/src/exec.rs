//! Cycle-level execution of a modulo schedule.
//!
//! The analytic model (`dra_sim::loop_cycles`) prices a software-pipelined
//! loop at `(iterations + stages - 1) · II`. This executor actually plays
//! the schedule: it issues every operation of every iteration at its
//! steady-state cycle (`iteration · II + time[op]`), checks the machine's
//! per-cycle resource limits dynamically, verifies every dependence is
//! satisfied *with values* (each op's inputs must have been produced), and
//! reports the measured makespan. It is the dynamic witness that the
//! static modulo reservation table and the cycle model agree.

use crate::ddg::{LoopDdg, OpKind};
use crate::ims::Schedule;
use dra_sim::VliwConfig;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Outcome of executing a schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KernelTrace {
    /// Cycle of the last issue plus latency — the measured makespan.
    pub makespan: u64,
    /// Total operations issued.
    pub issued: u64,
    /// Maximum operations in flight in any single cycle (issue-slot load).
    pub peak_issue: u32,
    /// Maximum simultaneously-live values observed.
    pub peak_live: usize,
}

/// Dynamic schedule violations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// More operations of one class issued in a cycle than units exist.
    ResourceOverflow {
        /// The cycle at fault.
        cycle: u64,
        /// Which resource.
        kind: OpKind,
        /// How many issued.
        n: u32,
    },
    /// An operation issued before a dependence's value was ready.
    DependenceViolation {
        /// Consumer op.
        op: usize,
        /// Producer op.
        from: usize,
        /// Consumer iteration index.
        iteration: u64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::ResourceOverflow { cycle, kind, n } => {
                write!(f, "cycle {cycle}: {n} {kind:?} ops exceed the unit count")
            }
            ExecError::DependenceViolation {
                op,
                from,
                iteration,
            } => write!(
                f,
                "op {op} (iteration {iteration}) issued before op {from}'s result"
            ),
        }
    }
}

impl Error for ExecError {}

/// Execute `iterations` iterations of the schedule on `machine`.
///
/// # Errors
///
/// See [`ExecError`] — any error means the schedule (or the machine
/// description) is wrong, so the modulo scheduler's tests treat this as a
/// hard failure.
pub fn execute_schedule(
    ddg: &LoopDdg,
    s: &Schedule,
    machine: &VliwConfig,
    iterations: u64,
) -> Result<KernelTrace, ExecError> {
    // Issue map: cycle -> ops issued (op index, iteration).
    let mut by_cycle: BTreeMap<u64, Vec<(usize, u64)>> = BTreeMap::new();
    for it in 0..iterations {
        for (op, &t) in s.time.iter().enumerate() {
            let cycle = it * s.ii as u64 + t as u64;
            by_cycle.entry(cycle).or_default().push((op, it));
        }
    }

    // Value-ready times: (op, iteration) -> cycle its result is available.
    let ready = |op: usize, it: u64| -> u64 {
        it * s.ii as u64 + s.time[op] as u64 + ddg.ops[op].latency as u64
    };

    let mut trace = KernelTrace {
        makespan: 0,
        issued: 0,
        peak_issue: 0,
        peak_live: 0,
    };

    for (&cycle, ops) in &by_cycle {
        // Resource check.
        let mut alu = 0u32;
        let mut mem = 0u32;
        for &(op, _) in ops {
            match ddg.ops[op].kind {
                OpKind::Alu => alu += 1,
                OpKind::Mem => mem += 1,
            }
        }
        if alu > machine.n_alus {
            return Err(ExecError::ResourceOverflow {
                cycle,
                kind: OpKind::Alu,
                n: alu,
            });
        }
        if mem > machine.n_mem_ports {
            return Err(ExecError::ResourceOverflow {
                cycle,
                kind: OpKind::Mem,
                n: mem,
            });
        }
        trace.peak_issue = trace.peak_issue.max(alu + mem);

        // Dependence check: every incoming edge's producer (distance
        // iterations earlier) must have completed.
        for &(op, it) in ops {
            for e in ddg.edges.iter().filter(|e| e.to == op) {
                let dist = e.distance as u64;
                if dist > it {
                    continue; // producer belongs to a pre-loop iteration
                }
                let pit = it - dist;
                // The edge's latency governs when the consumer may issue
                // (spill-inserted edges carry custom latencies distinct
                // from the producer's result latency).
                let need = pit * s.ii as u64 + s.time[e.from] as u64 + e.latency as u64;
                if cycle < need {
                    return Err(ExecError::DependenceViolation {
                        op,
                        from: e.from,
                        iteration: it,
                    });
                }
            }
            trace.issued += 1;
            let done = ready(op, it);
            trace.makespan = trace.makespan.max(done);
        }
    }

    // Peak live values: scan value intervals over the executed window.
    let lt = crate::kernel::lifetimes(ddg, s);
    let mut deltas: BTreeMap<u64, i64> = BTreeMap::new();
    for it in 0..iterations {
        for iv in lt.intervals.iter().flatten() {
            let start = it * s.ii as u64 + iv.0 as u64;
            let end = it * s.ii as u64 + iv.1 as u64;
            *deltas.entry(start).or_insert(0) += 1;
            *deltas.entry(end).or_insert(0) -= 1;
        }
    }
    let mut live = 0i64;
    for (_, d) in deltas {
        live += d;
        trace.peak_live = trace.peak_live.max(live as usize);
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ims::modulo_schedule;
    use crate::kernel::max_live;
    use dra_sim::loop_cycles;

    fn machine() -> VliwConfig {
        VliwConfig::default()
    }

    #[test]
    fn dot_product_executes_cleanly() {
        let d = LoopDdg::dot_product(50);
        let s = modulo_schedule(&d, &machine(), 64).unwrap();
        let t = execute_schedule(&d, &s, &machine(), 50).unwrap();
        assert_eq!(t.issued, 50 * d.len() as u64);
        assert!(t.peak_issue <= machine().issue_width);
    }

    #[test]
    fn makespan_matches_analytic_model() {
        let d = LoopDdg::dot_product(100);
        let s = modulo_schedule(&d, &machine(), 64).unwrap();
        let t = execute_schedule(&d, &s, &machine(), 100).unwrap();
        let analytic = loop_cycles(&machine(), s.ii, s.stages(), 100, 0);
        // The analytic model rounds the drain phase up to whole stages;
        // the measured makespan sits within one stage of it.
        let slack = (s.ii * s.stages()) as u64;
        assert!(
            t.makespan <= analytic + slack && analytic <= t.makespan + slack,
            "measured {} vs analytic {analytic}",
            t.makespan
        );
    }

    #[test]
    fn peak_live_matches_max_live_in_steady_state() {
        let mut d = LoopDdg::new(40);
        let loads: Vec<_> = (0..8).map(|_| d.add_op(crate::ddg::LoopOp::load(6))).collect();
        let sum = d.add_op(crate::ddg::LoopOp::alu());
        for &l in &loads {
            d.add_dep(l, sum, 0);
        }
        let s = modulo_schedule(&d, &machine(), 64).unwrap();
        let t = execute_schedule(&d, &s, &machine(), 40).unwrap();
        let ml = max_live(&d, &s);
        assert!(
            t.peak_live >= ml,
            "steady-state peak {} below static MaxLive {ml}",
            t.peak_live
        );
        // And not wildly above (the static measure is per-II-slot).
        assert!(t.peak_live <= ml + d.len());
    }

    #[test]
    fn corrupted_schedule_is_caught() {
        let d = LoopDdg::dot_product(10);
        let mut s = modulo_schedule(&d, &machine(), 64).unwrap();
        // Move the accumulator before its input's latency.
        s.time[3] = 0;
        let err = execute_schedule(&d, &s, &machine(), 10).unwrap_err();
        assert!(matches!(err, ExecError::DependenceViolation { .. }), "{err}");
    }

    #[test]
    fn oversubscribed_memory_is_caught() {
        // Hand-build an illegal schedule: 4 loads at cycle 0, II 1.
        let mut d = LoopDdg::new(4);
        for _ in 0..4 {
            d.add_op(crate::ddg::LoopOp::load(2));
        }
        let s = Schedule {
            ii: 1,
            time: vec![0, 0, 0, 0],
            len: 1,
        };
        let err = execute_schedule(&d, &s, &machine(), 2).unwrap_err();
        assert!(
            matches!(
                err,
                ExecError::ResourceOverflow {
                    kind: OpKind::Mem,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn every_suite_schedule_is_dynamically_legal() {
        // The IMS + sink output must survive dynamic checking.
        for seed in [1u64, 2, 3] {
            let mut d = LoopDdg::new(20);
            let mut prev = None;
            for i in 0..12 {
                let op = if i % 3 == 0 {
                    d.add_op(crate::ddg::LoopOp::load(3 + (seed as u32 % 3)))
                } else {
                    d.add_op(crate::ddg::LoopOp::alu())
                };
                if let Some(p) = prev {
                    d.add_dep(p, op, 0);
                }
                if i % 5 == 0 {
                    d.add_dep(op, op, 1);
                }
                prev = Some(op);
            }
            let s = modulo_schedule(&d, &machine(), 256).unwrap();
            execute_schedule(&d, &s, &machine(), 20).unwrap();
        }
    }
}
