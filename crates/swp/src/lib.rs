//! # dra-swp — software pipelining with differential register allocation
//!
//! Implements the Section 8.1 application: modulo scheduling for the VLIW
//! machine, register allocation of the pipelined kernel, spill insertion
//! when the requirement exceeds the architected registers, and the
//! **differential remapping** post-pass that lets `RegN > 32` registers be
//! addressed through 5-bit (`DiffN = 32`) fields — with the repair
//! `set_last_reg`s promoted ahead of the kernel so the modulo schedule is
//! untouched.
//!
//! The flow mirrors the paper's Figure 10:
//!
//! ```text
//! DDG -> MII -> iterative modulo scheduling -> register requirement
//!     -> (requirement > RegN? spill & reschedule) -> kernel allocation
//!     -> differential remapping -> set_last_reg promotion
//! ```
//!
//! ```
//! use dra_swp::{pipeline_loop, LoopDdg, PipelineConfig};
//!
//! let ddg = LoopDdg::dot_product(1000);
//! let r = pipeline_loop(&ddg, &PipelineConfig::highend(32))?;
//! assert!(r.ii >= 1);
//! assert!(r.cycles >= 1000, "at least one cycle per iteration");
//! # Ok::<(), dra_swp::pipeline::PipelineError>(())
//! ```

pub mod ddg;
pub mod exec;
pub mod from_ir;
pub mod ims;
pub mod kernel;
pub mod mii;
pub mod pipeline;

pub use ddg::{DepEdge, LoopDdg, LoopOp, OpKind};
pub use exec::{execute_schedule, ExecError, KernelTrace};
pub use from_ir::{ddg_from_loop, FromIrError, LatencyModel};
pub use ims::{modulo_schedule, modulo_schedule_from, Schedule};
pub use kernel::{allocate_kernel, KernelAlloc};
pub use mii::{mii, rec_mii, res_mii};
pub use pipeline::{pipeline_loop, PipelineConfig, PipelinedLoop};
