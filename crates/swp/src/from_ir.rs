//! Deriving a loop DDG from IR — the bridge between the low-end compiler
//! world (`dra-ir` functions) and the high-end scheduling world
//! ([`LoopDdg`]).
//!
//! Given an innermost natural loop whose body is a single basic block
//! (the shape modulo scheduling targets), build the dependence graph:
//!
//! * **true dependences** within the iteration (def → use);
//! * **loop-carried dependences** for values read before they are written
//!   in the body (distance 1 through the block's live-around values);
//! * **memory dependences**: stores are kept in order with loads and other
//!   stores, conservatively (no alias analysis — a store may feed any
//!   later load, and a load may not be hoisted over an earlier store to
//!   the same region), with same-iteration order edges and a distance-1
//!   serialization between iterations.

use crate::ddg::{DepEdge, LoopDdg, LoopOp};
use dra_ir::loops::NaturalLoop;
use dra_ir::{BinOp, Function, Inst, Reg};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Why a loop could not be converted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FromIrError {
    /// The loop body spans more than one block (or includes the header's
    /// control flow in a shape we do not pipeline).
    NotStraightLine,
    /// The body contains a call — calls are not software-pipelined.
    HasCall,
    /// The body is empty of schedulable operations.
    Empty,
}

impl fmt::Display for FromIrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FromIrError::NotStraightLine => write!(f, "loop body is not a single block"),
            FromIrError::HasCall => write!(f, "loop body contains a call"),
            FromIrError::Empty => write!(f, "loop body has no schedulable operations"),
        }
    }
}

impl Error for FromIrError {}

/// Latency model used when converting IR operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyModel {
    /// Plain ALU operations.
    pub alu: u32,
    /// Multiplies.
    pub mul: u32,
    /// Divides/remainders.
    pub div: u32,
    /// Loads.
    pub load: u32,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            alu: 1,
            mul: 3,
            div: 8,
            load: 3,
        }
    }
}

/// Convert an innermost single-block loop of `f` into a [`LoopDdg`].
///
/// `trip_count` seeds the DDG's cycle accounting (use the header block's
/// frequency or a profile count).
///
/// # Errors
///
/// See [`FromIrError`].
pub fn ddg_from_loop(
    f: &Function,
    l: &NaturalLoop,
    lat: LatencyModel,
    trip_count: u64,
) -> Result<LoopDdg, FromIrError> {
    // The schedulable body: exactly one non-header block, or a self-loop
    // header. The header's compare/branch becomes loop control (not
    // scheduled, as in real modulo schedulers).
    let body_blocks: Vec<_> = l.blocks.iter().filter(|&&b| b != l.header).collect();
    let body = match body_blocks.as_slice() {
        [] => l.header, // self-loop: the header is the body
        [one] => **one,
        _ => return Err(FromIrError::NotStraightLine),
    };

    let insts = &f.block(body).insts;
    if insts.iter().any(|i| matches!(i, Inst::Call { .. })) {
        return Err(FromIrError::HasCall);
    }

    let mut d = LoopDdg::new(trip_count);
    // Map from register to the op that last defined it this iteration.
    let mut last_def: HashMap<Reg, usize> = HashMap::new();
    // Reads of registers not yet defined this iteration: candidates for
    // loop-carried dependences (resolved after the scan).
    let mut carried_reads: Vec<(Reg, usize)> = Vec::new();
    let mut last_store: Option<usize> = None;
    let mut loads_since_store: Vec<usize> = Vec::new();
    let mut first_mem: Option<usize> = None;
    let mut ops_of_inst: Vec<Option<usize>> = Vec::new();

    for inst in insts {
        let op = match inst {
            Inst::Bin { op, .. } | Inst::BinImm { op, .. } => Some(d.add_op(match op {
                BinOp::Mul => LoopOp::alu_lat(lat.mul),
                BinOp::Div | BinOp::Rem => LoopOp::alu_lat(lat.div),
                _ => LoopOp::alu_lat(lat.alu),
            })),
            Inst::Mov { .. } | Inst::MovImm { .. } | Inst::GetParam { .. } => {
                Some(d.add_op(LoopOp::alu_lat(lat.alu)))
            }
            Inst::Load { .. } | Inst::SpillLoad { .. } => Some(d.add_op(LoopOp::load(lat.load))),
            Inst::Store { .. } | Inst::SpillStore { .. } => Some(d.add_op(LoopOp::store())),
            // Control flow and decode-stage pseudo-ops are not scheduled.
            Inst::Br { .. }
            | Inst::CondBr { .. }
            | Inst::Ret { .. }
            | Inst::SetLastReg { .. }
            | Inst::Nop => None,
            Inst::Call { .. } => unreachable!("rejected above"),
        };
        ops_of_inst.push(op);
        let Some(op) = op else { continue };

        // Register dependences.
        for u in inst.uses() {
            match last_def.get(&u) {
                Some(&producer) => d.add_dep(producer, op, 0),
                None => carried_reads.push((u, op)),
            }
        }
        for def in inst.defs() {
            last_def.insert(def, op);
        }

        // Memory ordering (conservative, no alias analysis).
        if inst.is_memory() {
            let is_store = matches!(inst, Inst::Store { .. } | Inst::SpillStore { .. });
            if is_store {
                // A store waits for every load issued since the previous
                // store, and for that store.
                for &ld in &loads_since_store {
                    d.edges.push(DepEdge {
                        from: ld,
                        to: op,
                        latency: 1,
                        distance: 0,
                    });
                }
                if let Some(st) = last_store {
                    d.edges.push(DepEdge {
                        from: st,
                        to: op,
                        latency: 1,
                        distance: 0,
                    });
                }
                last_store = Some(op);
                loads_since_store.clear();
            } else {
                if let Some(st) = last_store {
                    d.edges.push(DepEdge {
                        from: st,
                        to: op,
                        latency: 1,
                        distance: 0,
                    });
                }
                loads_since_store.push(op);
            }
            if first_mem.is_none() {
                first_mem = Some(op);
            }
        }
    }

    if d.is_empty() {
        return Err(FromIrError::Empty);
    }

    // Loop-carried register dependences: a read of a register defined
    // later in the body consumes last iteration's value.
    for (reg, consumer) in carried_reads {
        if let Some(&producer) = last_def.get(&reg) {
            d.edges.push(DepEdge {
                from: producer,
                to: consumer,
                latency: d.ops[producer].latency,
                distance: 1,
            });
        }
        // Values defined outside the loop are loop invariants: no edge.
    }
    // Inter-iteration memory serialization: next iteration's first memory
    // op follows this iteration's last store.
    if let (Some(st), Some(first)) = (last_store, first_mem) {
        d.edges.push(DepEdge {
            from: st,
            to: first,
            latency: 1,
            distance: 1,
        });
    }
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ims::modulo_schedule;
    use dra_ir::loops::find_loops;
    use dra_ir::{Cond, FunctionBuilder};
    use dra_sim::VliwConfig;

    /// `for i in 0..n { acc += a[i]; }` as IR.
    fn sum_loop() -> Function {
        let mut b = FunctionBuilder::new("sum");
        let i = b.new_vreg();
        let n = b.new_vreg();
        let acc = b.new_vreg();
        let base = b.new_vreg();
        b.mov_imm(i, 0);
        b.mov_imm(n, 100);
        b.mov_imm(acc, 0);
        b.mov_imm(base, 0x1000);
        let h = b.new_block();
        let body = b.new_block();
        let ex = b.new_block();
        b.br(h);
        b.switch_to(h);
        b.cond_br(Cond::Lt, i.into(), n.into(), body, ex);
        b.switch_to(body);
        let t = b.new_vreg();
        b.load(t, base.into(), 0);
        b.bin(BinOp::Add, acc, acc.into(), t.into());
        b.bin_imm(BinOp::Add, i, i.into(), 1);
        b.br(h);
        b.switch_to(ex);
        b.ret(Some(acc.into()));
        b.finish()
    }

    #[test]
    fn sum_loop_converts_and_schedules() {
        let f = sum_loop();
        let loops = find_loops(&f);
        assert_eq!(loops.len(), 1);
        let ddg = ddg_from_loop(&f, &loops[0], LatencyModel::default(), 100).unwrap();
        // Ops: load, add(acc), add(i) = 3.
        assert_eq!(ddg.len(), 3);
        // The accumulator and induction variable carry distance-1 edges.
        let carried = ddg.edges.iter().filter(|e| e.distance == 1).count();
        assert!(carried >= 2, "acc and i recurrences: {:?}", ddg.edges);
        // And it schedules.
        let s = modulo_schedule(&ddg, &VliwConfig::default(), 64).unwrap();
        assert!(s.ii >= 1);
    }

    #[test]
    fn store_load_ordering_is_preserved() {
        let mut b = FunctionBuilder::new("f");
        let i = b.new_vreg();
        let n = b.new_vreg();
        let base = b.new_vreg();
        let x = b.new_vreg();
        b.mov_imm(i, 0);
        b.mov_imm(n, 10);
        b.mov_imm(base, 0x1000);
        let h = b.new_block();
        let body = b.new_block();
        let ex = b.new_block();
        b.br(h);
        b.switch_to(h);
        b.cond_br(Cond::Lt, i.into(), n.into(), body, ex);
        b.switch_to(body);
        b.store(i.into(), base.into(), 0); // store
        b.load(x, base.into(), 0); // later load must not hoist above it
        b.bin_imm(BinOp::Add, i, i.into(), 1);
        b.br(h);
        b.switch_to(ex);
        b.ret(None);
        let f = b.finish();
        let loops = find_loops(&f);
        let ddg = ddg_from_loop(&f, &loops[0], LatencyModel::default(), 10).unwrap();
        // Find the store (op with no result among mem ops) and the load.
        let store = (0..ddg.len())
            .find(|&o| !ddg.ops[o].has_result && ddg.ops[o].kind == crate::ddg::OpKind::Mem)
            .unwrap();
        let load = (0..ddg.len())
            .find(|&o| ddg.ops[o].has_result && ddg.ops[o].kind == crate::ddg::OpKind::Mem)
            .unwrap();
        assert!(
            ddg.edges
                .iter()
                .any(|e| e.from == store && e.to == load && e.distance == 0),
            "store -> load order edge missing: {:?}",
            ddg.edges
        );
        let s = modulo_schedule(&ddg, &VliwConfig::default(), 64).unwrap();
        assert!(s.time[load] > s.time[store]);
    }

    #[test]
    fn call_in_body_rejected() {
        let mut b = FunctionBuilder::new("f");
        let i = b.new_vreg();
        let n = b.new_vreg();
        b.mov_imm(i, 0);
        b.mov_imm(n, 10);
        let h = b.new_block();
        let body = b.new_block();
        let ex = b.new_block();
        b.br(h);
        b.switch_to(h);
        b.cond_br(Cond::Lt, i.into(), n.into(), body, ex);
        b.switch_to(body);
        b.call(0, vec![], None);
        b.bin_imm(BinOp::Add, i, i.into(), 1);
        b.br(h);
        b.switch_to(ex);
        b.ret(None);
        let f = b.finish();
        let loops = find_loops(&f);
        assert_eq!(
            ddg_from_loop(&f, &loops[0], LatencyModel::default(), 10),
            Err(FromIrError::HasCall)
        );
    }

    #[test]
    fn multi_block_body_rejected() {
        let mut b = FunctionBuilder::new("f");
        let c = b.new_vreg();
        b.mov_imm(c, 0);
        let h = b.new_block();
        let b1 = b.new_block();
        let b2 = b.new_block();
        let ex = b.new_block();
        b.br(h);
        b.switch_to(h);
        b.cond_br(Cond::Lt, c.into(), c.into(), b1, ex);
        b.switch_to(b1);
        b.bin_imm(BinOp::Add, c, c.into(), 1);
        b.br(b2);
        b.switch_to(b2);
        b.bin_imm(BinOp::Add, c, c.into(), 1);
        b.br(h);
        b.switch_to(ex);
        b.ret(None);
        let f = b.finish();
        let loops = find_loops(&f);
        assert_eq!(
            ddg_from_loop(&f, &loops[0], LatencyModel::default(), 10),
            Err(FromIrError::NotStraightLine)
        );
    }

    /// End-to-end: generator benchmark -> innermost IR loop -> DDG ->
    /// full differential pipelining sweep.
    #[test]
    fn benchmark_loops_pipeline_end_to_end() {
        use crate::pipeline::{pipeline_loop, PipelineConfig};
        let p = dra_workloads_shim::benchmark_like();
        let mut converted = 0;
        for f in &p.funcs {
            for l in find_loops(f) {
                let trip = f.block(l.header).freq.max(2.0) as u64;
                if let Ok(ddg) = ddg_from_loop(f, &l, LatencyModel::default(), trip) {
                    converted += 1;
                    let r = pipeline_loop(&ddg, &PipelineConfig::highend(32));
                    assert!(r.is_ok(), "IR-derived loop failed to pipeline: {r:?}");
                }
            }
        }
        assert!(converted > 0, "at least one loop converts");
    }

    /// dra-swp cannot depend on dra-workloads (cycle); build a small
    /// benchmark-shaped program locally instead.
    mod dra_workloads_shim {
        use super::*;
        pub fn benchmark_like() -> dra_ir::Program {
            let mut funcs = Vec::new();
            for seed in 0..3u8 {
                let mut b = FunctionBuilder::new(format!("k{seed}"));
                let i = b.new_vreg();
                let n = b.new_vreg();
                let acc = b.new_vreg();
                let base = b.new_vreg();
                b.mov_imm(i, 0);
                b.mov_imm(n, 20 + seed as i32);
                b.mov_imm(acc, 1);
                b.mov_imm(base, 0x2000);
                let h = b.new_block();
                let body = b.new_block();
                let ex = b.new_block();
                b.br(h);
                b.switch_to(h);
                b.cond_br(Cond::Lt, i.into(), n.into(), body, ex);
                b.switch_to(body);
                let t = b.new_vreg();
                b.load(t, base.into(), 8 * seed as i32);
                b.bin(BinOp::Mul, acc, acc.into(), t.into());
                b.store(acc.into(), base.into(), 16);
                b.bin_imm(BinOp::Add, i, i.into(), 1);
                b.br(h);
                b.switch_to(ex);
                b.ret(Some(acc.into()));
                let mut f = b.finish();
                dra_ir::loops::assign_static_frequencies(&mut f);
                funcs.push(f);
            }
            dra_ir::Program { funcs, entry: 0 }
        }
    }
}
