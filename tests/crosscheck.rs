//! Cross-validation between independent subsystems: quantities that two
//! different crates compute by different means must agree.

use dra_adjgraph::{build_preg_adjacency, DiffParams};
use dra_encoding::{insert_set_last_reg, EncodingConfig};
use dra_ir::{FunctionBuilder, Inst, PReg, RegClass};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// For straight-line code with unit block frequency and a pinned entry
/// state, the adjacency graph's assignment cost (dra-adjgraph's world)
/// equals the number of out-of-range repairs the encoder inserts
/// (dra-encoding's world): a repair neutralizes exactly one violating
/// adjacent pair and leaves the chain state unchanged.
#[test]
fn adjacency_cost_equals_out_of_range_repairs_on_straight_line() {
    let params = DiffParams::new(12, 8);
    let mut rng = SmallRng::seed_from_u64(99);
    for case in 0..50 {
        let mut b = FunctionBuilder::new("x");
        b.push(Inst::SetLastReg {
            class: RegClass::Int,
            value: 0,
            delay: 0,
        });
        let n = rng.gen_range(3..30);
        for _ in 0..n {
            let dst = rng.gen_range(0..12u8);
            let src = rng.gen_range(0..12u8);
            b.push(Inst::Mov {
                dst: PReg(dst).into(),
                src: PReg(src).into(),
            });
        }
        b.ret(None);
        let mut f = b.finish();

        // Adjacency-graph prediction. The graph drops self-pairs and
        // carries no entry edge; the pinned entry state (last = 0) adds
        // the 0 -> first-access pair, which the graph cannot see, so
        // account for it separately.
        let g = build_preg_adjacency(&f, RegClass::Int, 12);
        let predicted = g.assignment_cost(|r| Some(r as u8), params);
        let first = f.blocks[0]
            .insts
            .iter()
            .flat_map(|i| i.accesses())
            .next()
            .unwrap()
            .expect_phys()
            .number();
        let entry_pair_violation = !params.in_range(0, first);

        let cfg = EncodingConfig::new(params);
        let stats = insert_set_last_reg(&mut f, &cfg);
        assert_eq!(stats.inconsistency, 0, "case {case}: entry was pinned");
        let expected = predicted + f64::from(entry_pair_violation);
        assert_eq!(
            stats.out_of_range as f64, expected,
            "case {case}: encoder repairs vs adjacency prediction"
        );
    }
}

/// The analytic VLIW loop-cycle model and the cycle-level schedule
/// executor agree (within the drain-phase rounding) across a spread of
/// generated loops.
#[test]
fn analytic_and_executed_loop_cycles_agree() {
    use dra_sim::{loop_cycles, VliwConfig};
    use dra_swp::{execute_schedule, modulo_schedule};
    use dra_workloads::{generate_loop_suite, LoopSuiteConfig};

    let m = VliwConfig::default();
    let suite = generate_loop_suite(&LoopSuiteConfig {
        n_loops: 30,
        hungry_fraction: 0.11,
        seed: 5,
    });
    for l in &suite {
        let s = modulo_schedule(&l.ddg, &m, 512).expect("schedulable");
        let iters = 25u64;
        let t = execute_schedule(&l.ddg, &s, &m, iters).expect("dynamically legal");
        let analytic = loop_cycles(&m, s.ii, s.stages(), iters, 0);
        let slack = (s.ii * s.stages()) as u64 + 1;
        assert!(
            t.makespan <= analytic + slack && analytic <= t.makespan + slack,
            "loop {}: measured {} vs analytic {analytic}",
            l.index,
            t.makespan
        );
    }
}

/// Code size: the abstract accounting (`dra-isa::function_size_bits`) and
/// the real assembler agree on every compiled benchmark function.
#[test]
fn size_model_matches_assembler_on_compiled_benchmarks() {
    use dra_core::lowend::{compile_benchmark, Approach, LowEndSetup};
    let setup = LowEndSetup::default();
    let geom = dra_isa::IsaGeometry::leaf16(3);
    let enc = EncodingConfig::new(setup.diff);
    for name in ["crc32", "qsort"] {
        let (p, _, _) = compile_benchmark(name, Approach::Select, &setup).unwrap();
        for f in &p.funcs {
            let image = dra_encoding::assemble_function(f, &enc, &geom)
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", f.name));
            assert_eq!(
                image.size_bits(),
                dra_isa::function_size_bits(f, &geom),
                "{name}/{}",
                f.name
            );
        }
    }
}

/// The simulator's dynamic `set_last_reg` count matches the sum over the
/// dynamic block trace of each block's static repair count — fetch
/// accounting is consistent with the static placement.
#[test]
fn dynamic_slr_count_is_consistent_with_trace() {
    use dra_core::lowend::{compile_and_run, Approach, LowEndSetup};
    let setup = LowEndSetup::default();
    let r = compile_and_run("crc32", Approach::Select, &setup).unwrap();
    // Per-block static counts of the whole program, weighted by the
    // measured block execution counts.
    let mut expected = 0u64;
    for (fi, f) in r.program.funcs.iter().enumerate() {
        for (bi, blk) in f.blocks.iter().enumerate() {
            let statics = blk.insts.iter().filter(|i| i.is_set_last_reg()).count() as u64;
            let execs = r
                .block_counts
                .get(&(fi as u32, bi as u32))
                .copied()
                .unwrap_or(0);
            expected += statics * execs;
        }
    }
    assert_eq!(r.dynamic_set_last_regs, expected);
}
