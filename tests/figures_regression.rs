//! Regression guards for the reproduced scientific claims: the orderings
//! behind Figures 11–14 must hold on a fast benchmark subset, so future
//! changes to allocators, encoder, simulator, or workloads cannot silently
//! drift away from the paper's shapes.

use dra_core::lowend::{compile_and_run, Approach, LowEndRun, LowEndSetup};

const SUBSET: &[&str] = &["qsort", "dijkstra", "stringsearch", "adpcm", "bitcount"];

fn runs(approach: Approach) -> Vec<LowEndRun> {
    let setup = LowEndSetup::default();
    SUBSET
        .iter()
        .map(|n| {
            compile_and_run(n, approach, &setup)
                .unwrap_or_else(|e| panic!("{n}/{}: {e}", approach.label()))
        })
        .collect()
}

fn avg(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    v.iter().sum::<f64>() / v.len() as f64
}

#[test]
fn figure11_ordering_differential_cuts_spills() {
    let base = avg(runs(Approach::Baseline).iter().map(|r| r.spill_percent()));
    let select = avg(runs(Approach::Select).iter().map(|r| r.spill_percent()));
    let coalesce = avg(runs(Approach::Coalesce).iter().map(|r| r.spill_percent()));
    assert!(
        select < base * 0.6,
        "select must cut spills hard: {select:.2} vs baseline {base:.2}"
    );
    assert!(
        coalesce < base * 0.6,
        "coalesce must cut spills hard: {coalesce:.2} vs baseline {base:.2}"
    );
}

#[test]
fn figure12_ordering_remapping_pays_most() {
    let remap = avg(runs(Approach::Remapping).iter().map(|r| r.cost_percent()));
    let select = avg(runs(Approach::Select).iter().map(|r| r.cost_percent()));
    let coalesce = avg(runs(Approach::Coalesce).iter().map(|r| r.cost_percent()));
    assert!(
        remap > select && remap > coalesce,
        "post-pass remapping must pay the most repairs: {remap:.2} vs {select:.2}/{coalesce:.2}"
    );
}

#[test]
fn figure13_remapping_grows_code_most() {
    let setup = LowEndSetup::default();
    let mut remap_worse = 0;
    for n in SUBSET {
        let base = compile_and_run(n, Approach::Baseline, &setup).unwrap();
        let remap = compile_and_run(n, Approach::Remapping, &setup).unwrap();
        let select = compile_and_run(n, Approach::Select, &setup).unwrap();
        let rr = remap.code_bits as f64 / base.code_bits as f64;
        let rs = select.code_bits as f64 / base.code_bits as f64;
        if rr >= rs {
            remap_worse += 1;
        }
    }
    assert!(
        remap_worse >= SUBSET.len() - 1,
        "remapping should grow code at least as much as select almost everywhere"
    );
}

#[test]
fn figure14_ordering_integrated_approaches_win() {
    let setup = LowEndSetup::default();
    let mut base_total = 0u64;
    let mut remap_total = 0u64;
    let mut select_total = 0u64;
    let mut coalesce_total = 0u64;
    for n in SUBSET {
        base_total += compile_and_run(n, Approach::Baseline, &setup).unwrap().cycles;
        remap_total += compile_and_run(n, Approach::Remapping, &setup).unwrap().cycles;
        select_total += compile_and_run(n, Approach::Select, &setup).unwrap().cycles;
        coalesce_total += compile_and_run(n, Approach::Coalesce, &setup).unwrap().cycles;
    }
    assert!(
        select_total < base_total && coalesce_total < base_total,
        "integrated approaches must beat the baseline: {select_total}/{coalesce_total} vs {base_total}"
    );
    assert!(
        select_total <= remap_total && coalesce_total <= remap_total,
        "integrated approaches must beat the post-pass: {select_total}/{coalesce_total} vs {remap_total}"
    );
}

#[test]
fn adaptive_beats_plain_select_on_cycles() {
    let setup = LowEndSetup::default();
    let mut select_total = 0u64;
    let mut adaptive_total = 0u64;
    for n in SUBSET {
        select_total += compile_and_run(n, Approach::Select, &setup).unwrap().cycles;
        adaptive_total += compile_and_run(n, Approach::Adaptive, &setup).unwrap().cycles;
    }
    assert!(
        adaptive_total <= select_total,
        "selective enabling must not lose: {adaptive_total} vs {select_total}"
    );
}
