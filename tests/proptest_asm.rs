//! Property tests of the LEAF assembler: every instruction round-trips
//! through its binary word layout — opcode class, field codes, immediates,
//! and branch targets all reconstruct exactly.

use dra_ir::{BinOp, BlockId, Cond, Inst, PReg, Reg, RegClass, SpillSlot};
use dra_isa::{decode_inst, encode_inst, IsaGeometry};
use proptest::prelude::*;

fn reg3() -> impl Strategy<Value = Reg> {
    (0u8..8).prop_map(|n| Reg::Phys(PReg(n)))
}

fn arb_inst() -> impl Strategy<Value = (Inst, Vec<u16>)> {
    prop_oneof![
        (any::<u8>(), reg3(), reg3(), reg3()).prop_map(|(op, d, l, r)| {
            let op = BinOp::ALL[op as usize % BinOp::ALL.len()];
            let fields = vec![
                l.expect_phys().number() as u16,
                r.expect_phys().number() as u16,
                d.expect_phys().number() as u16,
            ];
            (Inst::Bin { op, dst: d, lhs: l, rhs: r }, fields)
        }),
        (any::<u8>(), reg3(), reg3(), any::<i32>()).prop_map(|(op, d, s, imm)| {
            let op = BinOp::ALL[op as usize % BinOp::ALL.len()];
            let fields = vec![
                s.expect_phys().number() as u16,
                d.expect_phys().number() as u16,
            ];
            (Inst::BinImm { op, dst: d, src: s, imm }, fields)
        }),
        (reg3(), any::<i32>()).prop_map(|(d, imm)| {
            let fields = vec![d.expect_phys().number() as u16];
            (Inst::MovImm { dst: d, imm }, fields)
        }),
        (reg3(), reg3(), -1000i32..1000).prop_map(|(d, b, off)| {
            let fields = vec![
                b.expect_phys().number() as u16,
                d.expect_phys().number() as u16,
            ];
            (Inst::Load { dst: d, base: b, offset: off }, fields)
        }),
        (reg3(), 0u32..100_000).prop_map(|(s, slot)| {
            let fields = vec![s.expect_phys().number() as u16];
            (Inst::SpillStore { src: s, slot: SpillSlot(slot) }, fields)
        }),
        (0u32..5000).prop_map(|t| (Inst::Br { target: BlockId(t) }, vec![])),
        (any::<u8>(), reg3(), reg3(), 0u32..1000, 0u32..1000).prop_map(
            |(c, l, r, t1, t2)| {
                let cond = Cond::ALL[c as usize % Cond::ALL.len()];
                let fields = vec![
                    l.expect_phys().number() as u16,
                    r.expect_phys().number() as u16,
                ];
                (
                    Inst::CondBr {
                        cond,
                        lhs: l,
                        rhs: r,
                        then_bb: BlockId(t1),
                        else_bb: BlockId(t2),
                    },
                    fields,
                )
            }
        ),
        (0u8..12, 0u8..8).prop_map(|(v, d)| {
            (
                Inst::SetLastReg {
                    class: RegClass::Int,
                    value: v,
                    delay: d,
                },
                vec![],
            )
        }),
        Just((Inst::Nop, vec![])),
        Just((Inst::Ret { value: None }, vec![])),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every instruction round-trips through LEAF16 words.
    #[test]
    fn leaf16_roundtrip((inst, fields) in arb_inst()) {
        let geom = IsaGeometry::leaf16(3);
        let words = encode_inst(&inst, &geom, &fields).expect("3-bit codes fit");
        let d = decode_inst(&words, &geom).expect("own output decodes");
        prop_assert_eq!(d.words, words.len(), "consumed exactly what was emitted");
        prop_assert_eq!(&d.fields[..fields.len().min(d.fields.len())], &fields[..]);
        match &inst {
            Inst::BinImm { imm, .. } | Inst::MovImm { imm, .. } => {
                prop_assert_eq!(d.imm, Some(*imm));
            }
            Inst::Load { offset, .. } => prop_assert_eq!(d.imm, Some(*offset)),
            Inst::SpillStore { slot, .. } => prop_assert_eq!(d.imm, Some(slot.0 as i32)),
            Inst::Br { target } => prop_assert_eq!(d.targets.first(), Some(&target.0)),
            Inst::CondBr { then_bb, else_bb, .. } => {
                prop_assert_eq!(&d.targets, &vec![then_bb.0, else_bb.0]);
            }
            Inst::SetLastReg { value, delay, .. } => {
                prop_assert_eq!(d.imm, Some(((*value as i32) << 3) | *delay as i32));
            }
            _ => {}
        }
    }

    /// LEAF32 (5-bit fields, 32-bit words) round-trips too.
    #[test]
    fn leaf32_roundtrip(
        op in 0u8..10,
        d in 0u8..32,
        l in 0u8..32,
        r in 0u8..32,
    ) {
        let geom = IsaGeometry::leaf32(5);
        let inst = Inst::Bin {
            op: BinOp::ALL[op as usize],
            dst: Reg::Phys(PReg(d)),
            lhs: Reg::Phys(PReg(l)),
            rhs: Reg::Phys(PReg(r)),
        };
        let fields = vec![l as u16, r as u16, d as u16];
        let words = encode_inst(&inst, &geom, &fields).unwrap();
        prop_assert_eq!(words.len() % 2, 0, "32-bit words come in u16 pairs");
        let dec = decode_inst(&words, &geom).unwrap();
        prop_assert_eq!(dec.fields, fields);
    }

    /// Offsets that fit scaled slots stay one word; the rest extend.
    #[test]
    fn load_offset_word_counts(off in -1024i32..1024) {
        let geom = IsaGeometry::leaf16(3);
        let inst = Inst::Load {
            dst: Reg::Phys(PReg(1)),
            base: Reg::Phys(PReg(0)),
            offset: off,
        };
        let words = encode_inst(&inst, &geom, &[0, 1]).unwrap();
        let scaled_fits = off % 8 == 0 && off / 8 > -8 && off / 8 < 8;
        prop_assert_eq!(words.len(), if scaled_fits { 1 } else { 3 });
    }
}
