//! Property tests pinning the bit-matrix + adjacency-list interference
//! graph to the seed's `HashSet`-of-pairs reference build.
//!
//! `InterferenceGraph::build` and `interference::reference::build` run the
//! same algorithm over different representations (and different node
//! sizing: the live entity window vs `vreg_count + MAX_PREGS`), so on any
//! function they must agree on every membership query, every degree,
//! every move, and every spill weight.

use dra_ir::liveness::MAX_PREGS;
use dra_ir::{Liveness, PReg, RegClass};
use dra_regalloc::interference::{reference, InterferenceGraph};
use dra_workloads::mibench::{generate, BenchSpec};
use proptest::prelude::*;

/// A bounded random benchmark spec (all knobs in safe ranges).
fn arb_spec() -> impl Strategy<Value = BenchSpec> {
    (
        any::<u64>(),        // seed
        1usize..=3,          // funcs
        4usize..=20,         // pressure
        4usize..=24,         // block_len
        1usize..=3,          // loops per func
        1u32..=2,            // depth
        0.0f64..0.35,        // mem ratio
        0.0f64..0.2,         // call ratio
        0.0f64..0.5,         // branch ratio
        0.0f64..0.2,         // muldiv
    )
        .prop_map(
            |(seed, funcs, pressure, block_len, loops, depth, mem, call, branch, muldiv)| {
                BenchSpec {
                    name: "prop-ig",
                    seed,
                    funcs,
                    pressure,
                    block_len,
                    loops_per_func: loops,
                    max_depth: depth,
                    mem_ratio: mem,
                    call_ratio: call,
                    branch_ratio: branch,
                    trip_range: (2, 6),
                    muldiv_ratio: muldiv,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        if cfg!(debug_assertions) { 8 } else { 32 }
    ))]

    /// The hybrid graph equals the reference build: same edges over the
    /// full reference entity space, same degrees, same moves, same
    /// weights, and nothing beyond the sized node window.
    #[test]
    fn bitmatrix_graph_matches_reference(spec in arb_spec()) {
        let clobbers = [PReg(0), PReg(1)];
        let p = generate(&spec);
        for f in &p.funcs {
            let l = Liveness::compute(f);
            let g = InterferenceGraph::build(f, &l, RegClass::Int, &clobbers);
            let r = reference::build(f, &l, RegClass::Int, &clobbers);

            let vc = f.vreg_count as usize;
            let ref_n = vc + MAX_PREGS;
            prop_assert!(g.num_nodes() <= ref_n, "sized graph cannot exceed reference");

            // Membership agrees over the whole reference entity space;
            // queries past the sized window answer false, and the
            // reference must have no edges there.
            for a in 0..ref_n as u32 {
                for b in (a + 1)..ref_n as u32 {
                    prop_assert_eq!(
                        g.interferes(a, b),
                        r.interferes(a, b),
                        "edge ({}, {}) disagrees (seed {:#x})", a, b, spec.seed
                    );
                }
            }

            // Degrees and adjacency agree node-by-node; the compact lists
            // hold no duplicates (the bit matrix dedupes inserts).
            for e in 0..ref_n as u32 {
                let want = r.degree(e);
                let got = if (e as usize) < g.num_nodes() { g.degree(e) } else { 0 };
                prop_assert_eq!(got, want, "degree of {} disagrees", e);
                if (e as usize) < g.num_nodes() {
                    let mut adj: Vec<u32> = g.adjacency(e).to_vec();
                    adj.sort_unstable();
                    adj.dedup();
                    prop_assert_eq!(adj.len(), g.degree(e), "duplicates in adjacency of {}", e);
                    for &n in g.adjacency(e) {
                        prop_assert!(r.adj[e as usize].contains(&n));
                    }
                }
            }

            // Move list and spill weights are identical.
            prop_assert_eq!(&g.moves, &r.moves);
            prop_assert_eq!(&g.use_def_weight[..], &r.use_def_weight[..g.num_nodes()]);
            prop_assert!(
                r.use_def_weight[g.num_nodes()..].iter().all(|&w| w == 0.0),
                "reference has weight outside the sized window"
            );
        }
    }

    /// The float-class graphs agree too (bare physical registers are
    /// Int-class and must stay out of both).
    #[test]
    fn float_class_matches_reference(spec in arb_spec()) {
        let clobbers = [PReg(0), PReg(1)];
        let p = generate(&spec);
        for f in &p.funcs {
            let l = Liveness::compute(f);
            let g = InterferenceGraph::build(f, &l, RegClass::Float, &clobbers);
            let r = reference::build(f, &l, RegClass::Float, &clobbers);
            let ref_n = f.vreg_count as usize + MAX_PREGS;
            for a in 0..ref_n as u32 {
                prop_assert_eq!(
                    if (a as usize) < g.num_nodes() { g.degree(a) } else { 0 },
                    r.degree(a)
                );
            }
            prop_assert_eq!(&g.moves, &r.moves);
        }
    }
}
