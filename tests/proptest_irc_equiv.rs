//! Property tests pinning the dense indexed IRC engine to the preserved
//! set-based implementation (`irc::reference`).
//!
//! The dense engine (`NodeState`/`MoveState` arrays, `OrderedIndexSet`
//! worklists, CSR move lists, path-compressed aliasing) reorganizes every
//! data structure the allocator touches, but its contract is exact
//! behavioral equality: same colors in the same instructions, same spill
//! decisions, same coalesces, same per-stage work counters — on any
//! program, under every select strategy and spill metric. These tests
//! allocate generated programs with both engines and compare the rewritten
//! functions bit for bit.

use dra_ir::{BinOp, Function, FunctionBuilder, PReg, VReg};
use dra_regalloc::irc::{self, reference};
use dra_regalloc::{AllocConfig, AllocStats, SelectStrategy, SpillMetric};
use dra_workloads::mibench::{generate, BenchSpec};
use proptest::prelude::*;

/// The schedule-invariant portion of [`AllocStats`] (everything except the
/// wall-clock phase timings).
fn stats_key(s: &AllocStats) -> (u32, usize, usize, u64, u64, u64, u64) {
    (
        s.rounds,
        s.spilled_vregs,
        s.moves_coalesced,
        s.simplify_steps,
        s.coalesce_steps,
        s.freeze_steps,
        s.spill_selects,
    )
}

/// Run both engines on clones of `f` and assert bit-identical outcomes
/// (including the `DidNotConverge` case: same error, same partial state).
fn assert_engines_agree(f: &Function, cfg: &AllocConfig) -> Result<(), TestCaseError> {
    let mut fd = f.clone();
    let mut fr = f.clone();
    let dense = irc::irc_allocate(&mut fd, cfg);
    let refr = reference::irc_allocate(&mut fr, cfg);
    prop_assert_eq!(
        &fd,
        &fr,
        "rewritten functions diverge under {:?}/{:?}",
        cfg.strategy,
        cfg.spill_metric
    );
    match (dense, refr) {
        (Ok(sd), Ok(sr)) => prop_assert_eq!(stats_key(&sd), stats_key(&sr)),
        (Err(ed), Err(er)) => prop_assert_eq!(ed, er),
        (d, r) => prop_assert!(false, "one engine errored: dense={d:?} reference={r:?}"),
    }
    Ok(())
}

/// The allocator configurations the pipeline exercises: plain baseline
/// under heavy pressure, biased select, differential select, and the
/// global-coverage spill metric with call clobbers.
fn configs() -> Vec<AllocConfig> {
    let mut biased = AllocConfig::baseline(8);
    biased.strategy = SelectStrategy::Biased;
    let mut coverage = AllocConfig::differential(dra_adjgraph::DiffParams::lowend_12_8());
    coverage.spill_metric = SpillMetric::GlobalCoverage;
    coverage.call_clobbers = vec![PReg(0), PReg(1)];
    vec![
        AllocConfig::baseline(4),
        biased,
        AllocConfig::differential(dra_adjgraph::DiffParams::new(12, 4)),
        coverage,
    ]
}

/// A bounded random benchmark spec (all knobs in safe ranges).
fn arb_spec() -> impl Strategy<Value = BenchSpec> {
    (
        any::<u64>(),  // seed
        1usize..=2,    // funcs
        4usize..=18,   // pressure
        4usize..=20,   // block_len
        1usize..=3,    // loops per func
        1u32..=2,      // depth
        0.0f64..0.35,  // mem ratio
        0.0f64..0.2,   // call ratio
        0.0f64..0.5,   // branch ratio
        0.0f64..0.2,   // muldiv
    )
        .prop_map(
            |(seed, funcs, pressure, block_len, loops, depth, mem, call, branch, muldiv)| {
                BenchSpec {
                    name: "prop-irc",
                    seed,
                    funcs,
                    pressure,
                    block_len,
                    loops_per_func: loops,
                    max_depth: depth,
                    mem_ratio: mem,
                    call_ratio: call,
                    branch_ratio: branch,
                    trip_range: (2, 6),
                    muldiv_ratio: muldiv,
                }
            },
        )
}

/// One step of the shrinking-friendly straight-line program generator.
/// Indices are taken modulo the live pool, so *any* byte sequence is a
/// valid program and proptest can shrink freely without invalidating it.
#[derive(Clone, Debug)]
enum Op {
    /// Define a fresh value.
    New(i8),
    /// Copy an existing pool value into a fresh vreg (coalesce fodder).
    Mov(u8),
    /// Combine two pool values into a fresh vreg.
    Add(u8, u8),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            any::<i8>().prop_map(Op::New),
            any::<u8>().prop_map(Op::Mov),
            (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Add(a, b)),
        ],
        1..48,
    )
}

/// Materialize an op list as a straight-line function whose final sum
/// keeps every defined value live — so long op lists force register
/// pressure well past any small `k` (spill + freeze transitions) while
/// `Mov` ops supply coalescible copies.
fn build_ops(ops: &[Op]) -> Function {
    let mut b = FunctionBuilder::new("prop-ops");
    let mut pool: Vec<VReg> = Vec::new();
    let first = b.new_vreg();
    b.mov_imm(first, 1);
    pool.push(first);
    for op in ops {
        let d = b.new_vreg();
        match *op {
            Op::New(i) => b.mov_imm(d, i as i32),
            Op::Mov(s) => {
                let src = pool[s as usize % pool.len()];
                b.mov(d, src.into());
            }
            Op::Add(x, y) => {
                let l = pool[x as usize % pool.len()];
                let r = pool[y as usize % pool.len()];
                b.bin(BinOp::Add, d, l.into(), r.into());
            }
        }
        pool.push(d);
    }
    let s = b.new_vreg();
    b.mov_imm(s, 0);
    for &v in &pool {
        b.bin(BinOp::Add, s, s.into(), v.into());
    }
    b.ret(Some(s.into()));
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        if cfg!(debug_assertions) { 8 } else { 32 }
    ))]

    /// Dense == reference on MiBench-style generated programs (loops,
    /// branches, calls) under all four pipeline configurations.
    #[test]
    fn dense_engine_matches_reference_on_mibench(spec in arb_spec()) {
        let p = generate(&spec);
        for f in &p.funcs {
            for cfg in configs() {
                assert_engines_agree(f, &cfg)?;
            }
        }
    }

    /// Dense == reference on shrinking-friendly straight-line programs
    /// whose keep-alive tail forces pressure far above k, driving the
    /// spill, coalesce, and freeze stages.
    #[test]
    fn dense_engine_matches_reference_on_op_lists(ops in arb_ops()) {
        let f = build_ops(&ops);
        for cfg in configs() {
            assert_engines_agree(&f, &cfg)?;
        }
    }
}

/// A hand-built program (two near-cliques bridged by an accumulator, a
/// Briggs-blocked move between them) that deterministically walks the
/// engine through all four stages — a fixed sanity anchor so the property
/// tests above can't silently pass on programs that never freeze.
#[test]
fn four_stage_program_agrees_and_counts_every_stage() {
    let mut b = FunctionBuilder::new("four-stage");
    let a: Vec<_> = (0..5).map(|_| b.new_vreg()).collect();
    let x = b.new_vreg();
    let y = b.new_vreg();
    let bs: Vec<_> = (0..5).map(|_| b.new_vreg()).collect();
    let s = b.new_vreg();
    b.mov_imm(s, 0);
    for (i, &v) in a.iter().enumerate() {
        b.mov_imm(v, i as i32);
    }
    b.bin(BinOp::Add, s, s.into(), a[4].into());
    b.mov_imm(x, 9);
    b.bin(BinOp::Add, s, s.into(), x.into());
    b.bin(BinOp::Add, s, s.into(), x.into());
    for &v in a.iter().take(4) {
        b.bin(BinOp::Add, s, s.into(), v.into());
    }
    b.mov(y, x.into());
    for (i, &v) in bs.iter().enumerate() {
        b.mov_imm(v, i as i32);
    }
    b.bin(BinOp::Add, s, s.into(), bs[4].into());
    for &v in bs.iter().take(4) {
        b.bin(BinOp::Add, s, s.into(), v.into());
    }
    for _ in 0..3 {
        b.bin(BinOp::Add, s, s.into(), y.into());
    }
    b.ret(Some(s.into()));
    let f = b.finish();

    let cfg = AllocConfig::baseline(4);
    let mut fd = f.clone();
    let mut fr = f.clone();
    let sd = irc::irc_allocate(&mut fd, &cfg).unwrap();
    let sr = reference::irc_allocate(&mut fr, &cfg).unwrap();
    assert_eq!(fd, fr);
    assert_eq!(stats_key(&sd), stats_key(&sr));
    assert!(sd.simplify_steps > 0, "{sd:?}");
    assert!(sd.coalesce_steps > 0, "{sd:?}");
    assert!(sd.freeze_steps > 0, "{sd:?}");
    assert!(sd.spill_selects > 0, "{sd:?}");
}
