//! Integration of the high-end (Table 2 / Table 3) pipeline on a reduced
//! loop suite: the qualitative shapes the paper reports must hold.

use dra_core::highend::{run_highend_suite, run_highend_sweep, speedup_percent, HighEndSetup};
use dra_workloads::{generate_loop_suite, LoopSuiteConfig};

/// Debug builds run the pipelines ~20x slower; shrink the suites so the
/// default `cargo test --workspace` stays tractable while release/CI runs
/// exercise the full sizes.
fn scaled(n: usize) -> usize {
    if cfg!(debug_assertions) {
        (n / 2).max(20)
    } else {
        n
    }
}

fn suite(n: usize) -> Vec<dra_workloads::SuiteLoop> {
    generate_loop_suite(&LoopSuiteConfig {
        n_loops: scaled(n),
        hungry_fraction: 0.11,
        seed: 0x5bec2000,
    })
}

#[test]
fn sweep_shapes_match_the_paper() {
    let s = suite(60);
    let sweep = run_highend_sweep(&s, &[32, 40, 48, 56, 64], 0);
    let base = &sweep[0];
    assert!(base.optimized_loops > 0);
    assert!(
        (base.optimized_loops as f64) / (base.total_loops as f64) < 0.25,
        "hungry loops are a minority"
    );

    let mut prev_opt_speedup = 0.0;
    let mut speedups = Vec::new();
    for agg in &sweep[1..] {
        let reg_n = agg.reg_n;
        let opt = speedup_percent(base.optimized_cycles as f64, agg.optimized_cycles as f64);
        let all = speedup_percent(base.all_cycles as f64, agg.all_cycles as f64);
        assert!(
            opt > -1.0,
            "RegN={reg_n}: optimized loops must not materially slow down ({opt}%)"
        );
        assert!(
            opt + 1.0 >= prev_opt_speedup,
            "RegN={reg_n}: speedup should not collapse ({opt} after {prev_opt_speedup})"
        );
        assert!(
            all <= opt + 1e-9,
            "all-loops speedup is diluted by untouched loops"
        );
        // Spills never increase with more registers.
        assert!(agg.optimized_spills <= base.optimized_spills);
        prev_opt_speedup = opt.max(prev_opt_speedup);
        speedups.push(opt);
    }
    // The sweep must be worth something by the top end.
    assert!(
        *speedups.last().unwrap() > 10.0,
        "optimized-loop speedup at RegN=64 too small: {speedups:?}"
    );
    // Saturation: the 56 -> 64 gain is smaller than the 32 -> 40 gain.
    let first_gain = speedups[0];
    let last_gain = speedups[3] - speedups[2];
    assert!(
        last_gain < first_gain || first_gain > 30.0,
        "speedup should saturate: first {first_gain}, last step {last_gain}"
    );
}

#[test]
fn code_growth_is_bounded_overall() {
    let s = suite(60);
    let sweep = run_highend_sweep(&s, &[32, 40, 64], 0);
    let base = &sweep[0];
    for agg in &sweep[1..] {
        let setup = HighEndSetup::at(agg.reg_n);
        let overall = agg.overall_code_growth(base, &setup);
        assert!(
            overall.abs() < 5.0,
            "RegN={}: overall code growth {overall}% out of the paper's ballpark",
            agg.reg_n
        );
    }
}

#[test]
fn common_loops_identical_across_sweep_points() {
    let s = suite(40);
    let sweep = run_highend_sweep(&s, &[40, 64], 0);
    let a_common = sweep[0].all_cycles - sweep[0].optimized_cycles;
    let b_common = sweep[1].all_cycles - sweep[1].optimized_cycles;
    assert_eq!(a_common, b_common, "selective enabling leaves them alone");
}

#[test]
fn set_last_regs_appear_only_with_extra_registers() {
    let s = suite(40);
    assert_eq!(run_highend_suite(&s, &HighEndSetup::at(32)).set_last_regs, 0);
    assert!(run_highend_suite(&s, &HighEndSetup::at(56)).set_last_regs > 0);
}
