//! End-to-end tests of the daemon's overload machinery over real
//! sockets: deadline shed for requests that expire while queued,
//! admission-control shed with priority lanes, cooperative mid-compile
//! cancellation, worker supervision (restart + `worker-lost` answer for
//! the orphaned request), and the client-side backoff loop actually
//! recovering from a shed.

use dra_core::lowend::Approach;
use dra_core::serve::{
    request_compile_source, request_compile_source_v2, serve, BackoffPolicy, Priority, ServeAddr,
    ServeClient, ServeConfig,
};
use dra_core::session::result_key;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

fn chaos_config(workers: usize, queue_cap: usize) -> ServeConfig {
    let mut config = ServeConfig::new(ServeAddr::Tcp("127.0.0.1:0".to_string()));
    config.workers = workers;
    config.queue_cap = queue_cap;
    config.setup.remap_starts = 16;
    config.setup.remap_threads = 1;
    config
}

/// A crc32 variant whose result key lands on `shard` of `workers`.
fn source_for_shard(tag: &str, shard: usize, workers: usize) -> String {
    let base = dra_workloads::benchmark("crc32").to_string();
    for nonce in 0u64..10_000 {
        let s = format!("{base}\n; overload {tag}-{nonce}\n");
        if (result_key("src", &s, Approach::Select)[0] % workers as u64) as usize == shard {
            return s;
        }
    }
    unreachable!("no nonce found for shard {shard}/{workers}")
}

/// Spin until `counter` reaches `at_least` on a dedicated stats client.
fn wait_for_counter(addr: &ServeAddr, counter: &str, at_least: u64) {
    let mut client = ServeClient::connect_with_retry(addr, Duration::from_secs(5)).unwrap();
    for _ in 0..15_000 {
        let resp = client.stats("sync").unwrap();
        let got = resp
            .stats
            .as_ref()
            .and_then(|t| t.counters.get(counter))
            .copied()
            .unwrap_or(0);
        if got >= at_least {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("timed out waiting for {counter} >= {at_least}");
}

#[test]
fn deadline_expiring_while_queued_is_shed_without_compiling() {
    let mut config = chaos_config(1, 8);
    config.faults.stall_request_ids.insert("wedge".to_string());
    let gate = Arc::clone(&config.stall_gate);
    let handle = serve(config).expect("bind");
    let addr = handle.addr().clone();
    let mut client = ServeClient::connect(&addr).expect("connect");

    // Wedge the only worker (no deadline on the wedge itself).
    let wedge_src = source_for_shard("wedge", 0, 1);
    client
        .send_line(&request_compile_source("wedge", &wedge_src, Approach::Select))
        .unwrap();
    wait_for_counter(&addr, "serve.requests", 1);

    // Queue a request with a deadline that lapses while it waits.
    let doomed_src = source_for_shard("doomed", 0, 1);
    client
        .send_line(&request_compile_source_v2(
            "doomed",
            &doomed_src,
            Approach::Select,
            Some(30),
            Priority::Interactive,
        ))
        .unwrap();
    std::thread::sleep(Duration::from_millis(200));
    gate.store(true, Ordering::SeqCst);

    // Responses in dequeue order: the wedge compiles, the doomed job is
    // shed with a retryable deadline error.
    let wedge = client.recv_response().unwrap();
    assert!(wedge.ok, "wedge should compile: {}", wedge.raw);
    let doomed = client.recv_response().unwrap();
    assert!(!doomed.ok);
    let (kind, message) = doomed.error.clone().expect("structured error");
    assert_eq!(kind, "deadline");
    assert!(doomed.retryable, "deadline sheds must be retryable");
    assert!(message.contains("while queued"), "message: {message}");

    handle.shutdown();
    let telemetry = handle.join().expect("clean shutdown");
    assert_eq!(telemetry.counter("serve.deadline.shed_queued"), 1);
    assert_eq!(telemetry.counter("serve.deadline.with_deadline"), 1);
    // Shed at dequeue means the pipeline never ran for it.
    assert_eq!(telemetry.counter("serve.ok"), 1);
}

#[test]
fn deadline_expiring_mid_service_cancels_at_a_checkpoint() {
    let mut config = chaos_config(1, 8);
    config.faults.stall_request_ids.insert("slow".to_string());
    let gate = Arc::clone(&config.stall_gate);
    let handle = serve(config).expect("bind");
    let addr = handle.addr().clone();
    let mut client = ServeClient::connect(&addr).expect("connect");

    // The stalled request carries its own deadline: dequeued in time,
    // wedged past it, it must cancel at the first checkpoint after
    // release instead of compiling a result nobody can use.
    let src = source_for_shard("slow", 0, 1);
    client
        .send_line(&request_compile_source_v2(
            "slow",
            &src,
            Approach::Select,
            Some(100),
            Priority::Interactive,
        ))
        .unwrap();
    wait_for_counter(&addr, "serve.requests", 1);
    std::thread::sleep(Duration::from_millis(250));
    gate.store(true, Ordering::SeqCst);

    let resp = client.recv_response().unwrap();
    assert!(!resp.ok);
    let (kind, message) = resp.error.clone().expect("structured error");
    assert_eq!(kind, "deadline");
    assert!(resp.retryable);
    assert!(message.contains("mid-compile"), "message: {message}");

    handle.shutdown();
    let telemetry = handle.join().expect("clean shutdown");
    assert_eq!(telemetry.counter("serve.deadline.cancelled"), 1);
    assert_eq!(telemetry.counter("serve.ok"), 0);
}

#[test]
fn admission_control_sheds_batch_before_interactive() {
    let mut config = chaos_config(1, 1);
    config.faults.stall_request_ids.insert("wedge".to_string());
    let gate = Arc::clone(&config.stall_gate);
    let handle = serve(config).expect("bind");
    let addr = handle.addr().clone();
    let mut client = ServeClient::connect(&addr).expect("connect");

    client
        .send_line(&request_compile_source(
            "wedge",
            &source_for_shard("wedge", 0, 1),
            Approach::Select,
        ))
        .unwrap();
    wait_for_counter(&addr, "serve.requests", 1);

    // cap=1: one batch job queues, the second is shed immediately; an
    // interactive job still fits the 2x reserve.
    let lines = [
        ("b1", Priority::Batch),
        ("b2", Priority::Batch),
        ("i1", Priority::Interactive),
    ];
    for (i, (id, priority)) in lines.iter().enumerate() {
        client
            .send_line(&request_compile_source_v2(
                id,
                &source_for_shard(&format!("adm-{i}"), 0, 1),
                Approach::Select,
                None,
                *priority,
            ))
            .unwrap();
    }
    // Only the shed can answer while the worker is wedged.
    let shed = client.recv_response().unwrap();
    assert_eq!(shed.id.as_deref(), Some("b2"));
    let (kind, message) = shed.error.clone().expect("structured error");
    assert_eq!(kind, "overloaded");
    assert!(shed.retryable, "overload sheds must be retryable");
    assert!(message.contains("queue is full"), "message: {message}");

    gate.store(true, Ordering::SeqCst);
    // Everything admitted completes: wedge, then i1 (priority lane),
    // then b1.
    let mut ids: Vec<String> = (0..3)
        .map(|_| {
            let r = client.recv_response().unwrap();
            assert!(r.ok, "admitted job failed: {}", r.raw);
            r.id.unwrap()
        })
        .collect();
    ids.sort();
    assert_eq!(ids, ["b1", "i1", "wedge"]);

    handle.shutdown();
    let telemetry = handle.join().expect("clean shutdown");
    assert_eq!(telemetry.counter("serve.overload.shed"), 1);
    assert_eq!(telemetry.counter("serve.overload.shed_interactive"), 0);
    assert_eq!(telemetry.counter("serve.overload.admitted"), 3);
    assert!(telemetry.counter("serve.overload.peak_depth") <= 2);
}

#[test]
fn killed_worker_is_restarted_and_the_request_answered() {
    let mut config = chaos_config(2, 8);
    config.faults.kill_request_ids.insert("kill".to_string());
    let handle = serve(config).expect("bind");
    let mut client = ServeClient::connect(handle.addr()).expect("connect");

    // Warm the cache on shard 0, then kill shard 0's worker.
    let warm_src = source_for_shard("warm", 0, 2);
    let warm = client
        .request(&request_compile_source("warm", &warm_src, Approach::Select))
        .unwrap();
    assert!(warm.ok && !warm.cached);

    let kill_src = source_for_shard("kill", 0, 2);
    let killed = client
        .request(&request_compile_source("kill", &kill_src, Approach::Select))
        .unwrap();
    assert!(!killed.ok);
    let (kind, message) = killed.error.clone().expect("structured error");
    assert_eq!(kind, "worker-lost");
    assert!(killed.retryable, "worker-lost must be retryable");
    assert!(message.contains("restarted"), "message: {message}");

    // The replacement worker serves the same shard with the same cache.
    let again = client
        .request(&request_compile_source("again", &warm_src, Approach::Select))
        .unwrap();
    assert!(again.ok, "replacement worker must serve: {}", again.raw);
    assert!(again.cached, "shard cache must survive the restart");

    client.shutdown("done").unwrap();
    let telemetry = handle.join().expect("clean shutdown");
    assert_eq!(telemetry.counter("serve.worker_restarts"), 1);
    assert_eq!(telemetry.counter("serve.worker_lost_requests"), 1);
}

#[test]
fn backoff_client_recovers_from_a_shed() {
    let mut config = chaos_config(1, 1);
    config.faults.stall_request_ids.insert("wedge".to_string());
    let gate = Arc::clone(&config.stall_gate);
    let handle = serve(config).expect("bind");
    let addr = handle.addr().clone();
    let mut filler = ServeClient::connect(&addr).expect("connect");

    filler
        .send_line(&request_compile_source(
            "wedge",
            &source_for_shard("wedge", 0, 1),
            Approach::Select,
        ))
        .unwrap();
    wait_for_counter(&addr, "serve.requests", 1);
    // Fill the batch lane so the backoff client's first attempt sheds.
    filler
        .send_line(&request_compile_source_v2(
            "filler",
            &source_for_shard("filler", 0, 1),
            Approach::Select,
            None,
            Priority::Batch,
        ))
        .unwrap();
    wait_for_counter(&addr, "serve.dispatched", 2);

    // Open the gate shortly after the first (shed) attempt so a retry
    // finds room.
    let opener = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        gate.store(true, Ordering::SeqCst);
    });

    let mut client = ServeClient::connect(&addr).expect("connect");
    let policy = BackoffPolicy {
        attempts: 8,
        base_ms: 40,
        cap_ms: 400,
        seed: 7,
    };
    let line = request_compile_source_v2(
        "retry",
        &source_for_shard("retry", 0, 1),
        Approach::Select,
        None,
        Priority::Batch,
    );
    let resp = client.request_with_backoff(&line, &policy).unwrap();
    assert!(
        resp.ok,
        "backoff should eventually get through: {}",
        resp.raw
    );
    opener.join().unwrap();

    handle.shutdown();
    let telemetry = handle.join().expect("clean shutdown");
    // At least one attempt was shed before one was admitted.
    assert!(telemetry.counter("serve.overload.shed") >= 1);
    assert_eq!(telemetry.counter("serve.errors"), 0);
}

#[test]
fn queued_requests_are_drained_or_answered_at_shutdown() {
    // Shutdown with jobs still queued behind a wedged worker: the drain
    // must still answer every admitted request (workers finish the
    // queue after the accept loop closes it).
    let mut config = chaos_config(1, 8);
    config.faults.stall_request_ids.insert("wedge".to_string());
    let gate = Arc::clone(&config.stall_gate);
    let handle = serve(config).expect("bind");
    let addr = handle.addr().clone();
    let mut client = ServeClient::connect(&addr).expect("connect");

    client
        .send_line(&request_compile_source(
            "wedge",
            &source_for_shard("wedge", 0, 1),
            Approach::Select,
        ))
        .unwrap();
    wait_for_counter(&addr, "serve.requests", 1);
    for i in 0..3 {
        client
            .send_line(&request_compile_source(
                &format!("queued-{i}"),
                &source_for_shard(&format!("q-{i}"), 0, 1),
                Approach::Select,
            ))
            .unwrap();
    }
    wait_for_counter(&addr, "serve.dispatched", 4);
    handle.shutdown();
    gate.store(true, Ordering::SeqCst);

    let mut seen = Vec::new();
    for _ in 0..4 {
        let r = client.recv_response().unwrap();
        assert!(r.ok, "drained job failed: {}", r.raw);
        seen.push(r.id.unwrap());
    }
    seen.sort();
    assert_eq!(seen, ["queued-0", "queued-1", "queued-2", "wedge"]);
    handle.join().expect("clean shutdown");
}
