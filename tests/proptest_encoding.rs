//! Property tests of the differential encoding core.
//!
//! The headline invariant (the paper's correctness argument): after the
//! repair pass, decoding along *any* CFG-valid execution path reproduces
//! exactly the register numbers the code names — regardless of which path
//! the execution takes through joins, loops, and calls.

use dra_adjgraph::DiffParams;
use dra_encoding::{
    block_entry_states_ordered, block_entry_states_reference_ordered, decode_trace,
    insert_set_last_reg, verify_function, EncodingConfig,
};
use dra_ir::{AccessOrder, BlockId, Cond, Function, FunctionBuilder, Inst, PReg, RegClass};
use proptest::prelude::*;

/// A random fully-physical function over `reg_n` registers: straight-line
/// segments, diamonds, and a loop, all built from mov/add instructions.
fn arb_function(reg_n: u8) -> impl Strategy<Value = Function> {
    let inst = (0..reg_n, 0..reg_n, 0..reg_n).prop_map(|(d, a, b)| Inst::Bin {
        op: dra_ir::BinOp::Add,
        dst: PReg(d).into(),
        lhs: PReg(a).into(),
        rhs: PReg(b).into(),
    });
    (
        proptest::collection::vec(inst.clone(), 1..8), // entry
        proptest::collection::vec(inst.clone(), 0..6), // then
        proptest::collection::vec(inst.clone(), 0..6), // else
        proptest::collection::vec(inst.clone(), 1..6), // loop body
        proptest::collection::vec(inst, 0..4),         // exit
    )
        .prop_map(move |(entry, then_i, else_i, body, exit)| {
            let mut b = FunctionBuilder::new("prop");
            let t = b.new_block();
            let e = b.new_block();
            let j = b.new_block();
            let lh = b.new_block();
            let lb = b.new_block();
            let ex = b.new_block();
            for i in entry {
                b.push(i);
            }
            b.cond_br(Cond::Eq, PReg(0).into(), PReg(1).into(), t, e);
            b.switch_to(t);
            for i in then_i {
                b.push(i);
            }
            b.br(j);
            b.switch_to(e);
            for i in else_i {
                b.push(i);
            }
            b.br(j);
            b.switch_to(j);
            b.br(lh);
            b.switch_to(lh);
            b.cond_br(Cond::Lt, PReg(0).into(), PReg(1).into(), lb, ex);
            b.switch_to(lb);
            for i in body {
                b.push(i);
            }
            b.br(lh);
            b.switch_to(ex);
            for i in exit {
                b.push(i);
            }
            b.ret(None);
            b.finish()
        })
}

/// A random CFG-valid walk of bounded length, starting at the entry.
fn random_walk(f: &Function, decisions: &[bool], max_len: usize) -> Vec<BlockId> {
    let mut trace = vec![f.entry];
    let mut cur = f.entry;
    let mut di = 0;
    while trace.len() < max_len {
        let succs = &f.block(cur).succs;
        if succs.is_empty() {
            break;
        }
        let pick = if succs.len() == 1 {
            succs[0]
        } else {
            let d = decisions.get(di).copied().unwrap_or(false);
            di += 1;
            succs[usize::from(d) % succs.len()]
        };
        trace.push(pick);
        cur = pick;
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        if cfg!(debug_assertions) { 16 } else { 64 }
    ))]

    /// Any path through a repaired function decodes to the original
    /// registers, under several (RegN, DiffN) schemes.
    #[test]
    fn repaired_function_decodes_on_every_path(
        f in arb_function(12),
        decisions in proptest::collection::vec(any::<bool>(), 32),
        scheme in prop_oneof![Just((12u16, 8u16)), Just((12, 4)), Just((16, 8)), Just((12, 12))],
    ) {
        let mut f = f;
        let cfg = EncodingConfig::new(DiffParams::new(scheme.0, scheme.1));
        insert_set_last_reg(&mut f, &cfg);
        prop_assert!(verify_function(&f, &cfg).is_ok());
        let walk = random_walk(&f, &decisions, 40);
        let decoded = decode_trace(&f, &cfg, &walk);
        prop_assert!(decoded.is_ok(), "trace decode failed: {:?}", decoded.err());
    }

    /// The repair pass is idempotent: a second run adds nothing.
    #[test]
    fn repair_is_idempotent(f in arb_function(12)) {
        let mut f = f;
        let cfg = EncodingConfig::new(DiffParams::new(12, 8));
        insert_set_last_reg(&mut f, &cfg);
        let again = insert_set_last_reg(&mut f, &cfg);
        prop_assert_eq!(again.inserted, 0);
    }

    /// Encode/decode arithmetic round-trips for every register pair.
    #[test]
    fn modulo_arithmetic_roundtrips(reg_n in 2u16..64, a in 0u8..64, b in 0u8..64) {
        let a = a % reg_n as u8;
        let b = b % reg_n as u8;
        let p = DiffParams::direct(reg_n);
        let d = p.encode(a, b);
        prop_assert_eq!(p.decode(a, d), b);
    }

    /// A function without enough repairs fails verification rather than
    /// decoding wrongly: strip one set_last_reg and the verifier notices
    /// (or the function was repair-free to begin with).
    #[test]
    fn stripping_a_repair_is_detected(f in arb_function(12)) {
        let mut f = f;
        let cfg = EncodingConfig::new(DiffParams::new(12, 4));
        let stats = insert_set_last_reg(&mut f, &cfg);
        prop_assume!(stats.inserted > 0);
        // Remove the first repair instruction.
        'outer: for b in &mut f.blocks {
            for (i, inst) in b.insts.iter().enumerate() {
                if inst.is_set_last_reg() {
                    b.insts.remove(i);
                    break 'outer;
                }
            }
        }
        f.recompute_cfg();
        prop_assert!(verify_function(&f, &cfg).is_err());
    }

    /// The memoized worklist dataflow reaches exactly the same entry
    /// states as the reference sweep-until-stable iteration, under both
    /// access orders (and after repair, which adds `set_last_reg`s the
    /// transfer functions must agree on).
    #[test]
    fn memoized_entry_states_match_reference(
        f in arb_function(12),
        repaired in any::<bool>(),
    ) {
        let mut f = f;
        if repaired {
            let cfg = EncodingConfig::new(DiffParams::new(12, 4));
            insert_set_last_reg(&mut f, &cfg);
        }
        for order in [AccessOrder::SrcsThenDst, AccessOrder::DstThenSrcs] {
            let fast = block_entry_states_ordered(&f, RegClass::Int, order);
            let slow = block_entry_states_reference_ordered(&f, RegClass::Int, order);
            prop_assert_eq!(fast, slow, "diverged under {:?}", order);
        }
    }

    /// Reserved registers never break decodability.
    #[test]
    fn reserved_registers_decode(
        f in arb_function(12),
        decisions in proptest::collection::vec(any::<bool>(), 16),
    ) {
        let mut f = f;
        let cfg = EncodingConfig::new(DiffParams::new(12, 8)).with_reserved([11u8]);
        insert_set_last_reg(&mut f, &cfg);
        prop_assert!(verify_function(&f, &cfg).is_ok());
        let walk = random_walk(&f, &decisions, 24);
        prop_assert!(decode_trace(&f, &cfg, &walk).is_ok());
    }
}

/// A straight-line function exercising an immediate `set_last_reg`
/// overtaking an in-flight delayed one. When `with_overtake` is false the
/// pending delayed set is left to land mid-stream.
fn overtake_function(with_overtake: bool) -> Function {
    let slr = |value: u8, delay: u8| Inst::SetLastReg {
        class: RegClass::Int,
        value,
        delay,
    };
    let mut b = FunctionBuilder::new("overtake");
    b.push(slr(3, 0)); // establish a known last_reg
    b.push(slr(9, 2)); // delayed: lands after two field decodes…
    if with_overtake {
        b.push(slr(3, 0)); // …unless an immediate set clears the queue
    }
    // Two field decodes (src r3 then dst r4). If the stale 9 still lands
    // here, last_reg becomes 9 before the next instruction.
    b.push(Inst::Mov {
        dst: PReg(4).into(),
        src: PReg(3).into(),
    });
    // From last_reg = 4 the diffs are 1 and 1; from a stale 9, r5 is
    // (5 - 9) mod 12 = 8 >= DiffN = 4 and cannot be encoded.
    b.push(Inst::Mov {
        dst: PReg(6).into(),
        src: PReg(5).into(),
    });
    b.ret(None);
    b.finish()
}

/// Satellite pin: the repair pass, the static encoder, and the dynamic
/// trace decoder all agree that `set_last_reg(v, 0)` clears any pending
/// delayed set — and that without the immediate set, the delayed one
/// really does land (so the test discriminates).
#[test]
fn immediate_set_overtakes_delayed_set_everywhere() {
    let cfg = EncodingConfig::new(DiffParams::new(12, 4));

    let mut f = overtake_function(true);
    // Repair pass: the function is already consistent; nothing to add.
    let stats = insert_set_last_reg(&mut f, &cfg);
    assert_eq!(stats.inserted, 0, "repair saw a stale pending set");
    // Static encoder: every field encodes from the overtaken state.
    assert!(verify_function(&f, &cfg).is_ok());
    // Dynamic decoder: the hardware walk recovers the named registers.
    let decoded = decode_trace(&f, &cfg, &[f.entry]).expect("trace decodes");
    assert_eq!(decoded, vec![3, 4, 5, 6]);

    // Without the overtaking set the delayed 9 lands after two decodes
    // and r5 falls out of the differential window.
    let stale = overtake_function(false);
    assert!(
        verify_function(&stale, &cfg).is_err(),
        "delayed set never landed — the contrast case is not discriminating"
    );
}

#[test]
fn regclass_int_is_the_only_generated_class() {
    // Guard for the strategies above: they build Int-class code only.
    let cfg = EncodingConfig::new(DiffParams::new(12, 8));
    assert_eq!(cfg.class, RegClass::Int);
}
