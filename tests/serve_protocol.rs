//! End-to-end tests of the `dra-serve-v1` protocol: round-trips over
//! real sockets, hostile input (malformed JSON, unknown fields,
//! oversized and truncated lines) always answered with structured
//! errors, per-request panic containment, and the load-bearing
//! determinism claim — concurrent service returns *byte-identical*
//! result objects to sequential service.

use dra_core::bench_serve::workload_sources;
use dra_core::lowend::Approach;
use dra_core::serve::{
    request_compile_bench, request_compile_source, serve, Response, ServeAddr, ServeClient,
    ServeConfig,
};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

fn tcp_config() -> ServeConfig {
    ServeConfig::new(ServeAddr::Tcp("127.0.0.1:0".to_string()))
}

fn unix_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dra-serve-{tag}-{}.sock", std::process::id()))
}

#[test]
fn full_protocol_roundtrip_over_tcp() {
    let mut config = tcp_config();
    config.workers = 2;
    let handle = serve(config).expect("bind");
    let mut client = ServeClient::connect(handle.addr()).expect("connect");

    let pong = client.ping("p1").unwrap();
    assert!(pong.ok);
    assert_eq!(pong.kind.as_deref(), Some("pong"));
    assert_eq!(pong.id.as_deref(), Some("p1"));

    let first = client.compile_bench("c1", "crc32", Approach::Select).unwrap();
    assert!(first.ok, "compile failed: {:?}", first.error);
    assert!(!first.cached);
    let result = first.result.as_ref().expect("result object");
    assert!(result.contains_key("cycles"));
    assert!(result.contains_key("code_bits"));

    // Identical job again: served from the cross-request result cache,
    // with an identical result object.
    let again = client.compile_bench("c2", "crc32", Approach::Select).unwrap();
    assert!(again.ok);
    assert!(again.cached, "second identical job should hit the cache");
    assert_eq!(first.result_fragment(), again.result_fragment());

    // Inline source text (multi-line, exercised through JSON escaping).
    let text = dra_workloads::benchmark("fft").to_string();
    let src = client.compile_source("c3", &text, Approach::Coalesce).unwrap();
    assert!(src.ok, "source compile failed: {:?}", src.error);

    let stats = client.stats("s1").unwrap();
    let frame = stats.stats.expect("stats frame");
    assert!(frame.counters.get("serve.requests").copied().unwrap_or(0) >= 3);
    assert!(frame.counters.get("result_cache.hits").copied().unwrap_or(0) >= 1);
    assert_eq!(frame.counters.get("serve.workers"), Some(&2));

    let bye = client.shutdown("q1").unwrap();
    assert!(bye.ok);
    assert_eq!(bye.kind.as_deref(), Some("bye"));
    let telemetry = handle.join().expect("clean shutdown");
    assert!(telemetry.counter("serve.requests") >= 3);
    assert_eq!(telemetry.counter("serve.panics"), 0);
}

#[test]
fn hostile_input_gets_structured_errors_not_disconnects() {
    let mut config = tcp_config();
    config.workers = 1;
    let handle = serve(config).expect("bind");
    let mut client = ServeClient::connect(handle.addr()).expect("connect");

    let cases: &[(&str, &str)] = &[
        ("this is not json", "bad-json"),
        ("[1,2,3]", "bad-json"),
        ("{\"schema\":\"dra-serve-v1\",\"id\":\"h1\",\"kind\":\"ping\",\"bogus\":true}", "bad-request"),
        ("{\"schema\":\"dra-serve-v0\",\"id\":\"h2\",\"kind\":\"ping\"}", "bad-request"),
        (
            "{\"schema\":\"dra-serve-v1\",\"id\":\"h3\",\"kind\":\"compile\",\"approach\":\"select\",\"bench\":\"no-such-bench\"}",
            "bad-request",
        ),
        (
            "{\"schema\":\"dra-serve-v1\",\"id\":\"h4\",\"kind\":\"compile\",\"approach\":\"quantum\",\"bench\":\"crc32\"}",
            "bad-request",
        ),
    ];
    for (line, want) in cases {
        let resp = client.request(line).unwrap();
        assert!(!resp.ok, "line should fail: {line}");
        let (kind, _) = resp.error.expect("structured error");
        assert_eq!(&kind, want, "line: {line}");
    }

    // The connection survived all of it: a well-formed job still works.
    let ok = client.compile_bench("h5", "crc32", Approach::Baseline).unwrap();
    assert!(ok.ok, "healthy request after hostile ones: {:?}", ok.error);

    client.shutdown("h6").unwrap();
    handle.join().expect("clean shutdown");
}

#[test]
fn oversized_lines_are_rejected_with_a_structured_error() {
    let mut config = tcp_config();
    config.workers = 1;
    config.max_line_bytes = 4096;
    let handle = serve(config).expect("bind");
    let mut client = ServeClient::connect(handle.addr()).expect("connect");

    let huge = format!(
        "{{\"schema\":\"dra-serve-v1\",\"id\":\"big\",\"kind\":\"compile\",\"approach\":\"select\",\"source\":\"{}\"}}",
        "x".repeat(8192)
    );
    let resp = client.request(&huge).unwrap();
    assert!(!resp.ok);
    assert_eq!(resp.error.as_ref().unwrap().0, "oversized");

    handle.shutdown();
    handle.join().expect("clean shutdown");
}

#[test]
fn truncated_line_at_eof_gets_a_structured_error() {
    let path = unix_path("trunc");
    let _ = std::fs::remove_file(&path);
    let mut config = ServeConfig::new(ServeAddr::Unix(path.clone()));
    config.workers = 1;
    let handle = serve(config).expect("bind");

    // A raw client that half-sends a request and hangs up.
    let mut raw = UnixStream::connect(&path).expect("connect");
    raw.write_all(b"{\"schema\":\"dra-serve-v1\",\"id\":\"t1\"").unwrap();
    raw.shutdown(std::net::Shutdown::Write).unwrap();
    let mut reply = String::new();
    raw.read_to_string(&mut reply).unwrap();
    let resp = Response::parse(reply.trim()).expect("structured response");
    assert!(!resp.ok);
    assert_eq!(resp.error.as_ref().unwrap().0, "truncated");

    handle.shutdown();
    handle.join().expect("clean shutdown");
    // Graceful teardown removes the socket file.
    assert!(!path.exists(), "stale socket file left behind");
}

#[test]
fn worker_panic_is_contained_per_request() {
    let mut config = tcp_config();
    config.workers = 2;
    config.retries = 0;
    config.faults.panic_request_ids.insert("boom".to_string());
    let handle = serve(config).expect("bind");
    let mut client = ServeClient::connect(handle.addr()).expect("connect");

    // The injected panic unwinds inside the worker; the response is a
    // structured error, not a dead socket.
    let blast = client.compile_bench("boom", "crc32", Approach::Select).unwrap();
    assert!(!blast.ok);
    let (kind, message) = blast.error.expect("structured panic report");
    assert_eq!(kind, "panic");
    assert!(message.contains("injected serve fault"), "message: {message}");

    // The pool is still healthy — same connection, same shard space.
    let ok = client.compile_bench("fine", "crc32", Approach::Select).unwrap();
    assert!(ok.ok, "pool should survive a contained panic: {:?}", ok.error);

    client.shutdown("done").unwrap();
    let telemetry = handle.join().expect("clean shutdown");
    assert_eq!(telemetry.counter("serve.panics"), 1);
    assert!(telemetry.counter("serve.ok") >= 1);
}

/// The acceptance-criteria pin: N jobs served concurrently (many
/// clients, many workers) return result objects byte-identical to the
/// same jobs served sequentially on a single worker. Allocation results
/// are pure functions of the input, and the response encoder keeps every
/// schedule-dependent quantity (timing, cache flags) outside the
/// `result` object.
#[test]
fn concurrent_results_are_byte_identical_to_sequential() {
    let sources = workload_sources("crc32", 0xbeef, 3);
    let approaches = [Approach::Select, Approach::Coalesce];
    let mut jobs: Vec<(String, String, Approach)> = Vec::new();
    for (si, src) in sources.iter().enumerate() {
        for &a in &approaches {
            jobs.push((format!("job-{si}-{}", a.label()), src.clone(), a));
        }
    }
    // One benchmark job rides along to cover the bench path too.
    let bench_line = request_compile_bench("job-bench", "qsort", Approach::Adaptive);

    // Sequential reference: one worker, one client, jobs in order.
    let mut config = tcp_config();
    config.workers = 1;
    let handle = serve(config).expect("bind");
    let mut client = ServeClient::connect(handle.addr()).expect("connect");
    let mut sequential: BTreeMap<String, String> = BTreeMap::new();
    for (id, src, a) in &jobs {
        let resp = client.request(&request_compile_source(id, src, *a)).unwrap();
        assert!(resp.ok, "{id}: {:?}", resp.error);
        sequential.insert(id.clone(), resp.result_fragment().unwrap().to_string());
    }
    let resp = client.request(&bench_line).unwrap();
    assert!(resp.ok);
    sequential.insert("job-bench".into(), resp.result_fragment().unwrap().to_string());
    client.shutdown("seq-done").unwrap();
    handle.join().expect("clean shutdown");

    // Concurrent run: 4 workers, one client thread per job, all in
    // flight at once against a fresh daemon (cold caches).
    let mut config = tcp_config();
    config.workers = 4;
    let handle = serve(config).expect("bind");
    let addr = handle.addr().clone();
    let mut lines: Vec<(String, String)> = jobs
        .iter()
        .map(|(id, src, a)| (id.clone(), request_compile_source(id, src, *a)))
        .collect();
    lines.push(("job-bench".into(), bench_line));
    let threads: Vec<_> = lines
        .into_iter()
        .map(|(id, line)| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = ServeClient::connect_with_retry(&addr, Duration::from_secs(5)).unwrap();
                let resp = c.request(&line).unwrap();
                assert!(resp.ok, "{id}: {:?}", resp.error);
                (id, resp.result_fragment().unwrap().to_string())
            })
        })
        .collect();
    let mut concurrent: BTreeMap<String, String> = BTreeMap::new();
    for t in threads {
        let (id, fragment) = t.join().expect("client thread");
        concurrent.insert(id, fragment);
    }
    handle.shutdown();
    handle.join().expect("clean shutdown");

    assert_eq!(sequential, concurrent, "concurrent service must be byte-identical");
}
