//! Minimized regressions from the checker-driven sweep (DESIGN.md §12).
//!
//! The symbolic checker was run over the full benchmark × approach matrix
//! (`drac check`); each defect it surfaced is pinned here in its smallest
//! reproducing form, together with the seeded-corruption cases that prove
//! the checker itself has teeth end to end.

use dra_core::lowend::{compile_program, compile_program_telemetry, Approach, LowEndSetup};
use dra_core::telemetry::Telemetry;
use dra_ir::{BinOp, FunctionBuilder, PReg, Reg};
use dra_regalloc::{check_allocation, AllocConfig, Allocator, CheckError, DenseIrc};
use dra_sim::{simulate, LowEndConfig};
use dra_workloads::mibench::{generate, BenchSpec};

/// A value defined before a call and used after it: the clobber hazard in
/// its smallest form.
fn live_across_call() -> dra_ir::Function {
    let mut b = FunctionBuilder::new("live-across-call");
    let x = b.new_vreg();
    let r = b.new_vreg();
    let s = b.new_vreg();
    b.mov_imm(x, 7);
    b.call(0, vec![], Some(r));
    b.bin(BinOp::Add, s, x.into(), r.into());
    b.ret(Some(s.into()));
    b.finish()
}

/// Regression for the unpinned-remap clobber bug: `LowEndSetup` used to
/// remap with nothing pinned, so the permutation search could move a value
/// that is live across a call into a call-clobbered register. The checker's
/// call transfer (which clears the clobbers) rejects exactly that shape —
/// reproduced here by applying such a permutation by hand.
#[test]
fn clobber_swapping_permutation_is_rejected() {
    let f = live_across_call();
    let mut cfg = AllocConfig::baseline(8);
    cfg.call_clobbers = vec![PReg(0), PReg(1)];
    let a = DenseIrc.allocate(&f, &cfg).unwrap();
    check_allocation(&a.func, &a.record).expect("clean allocation must pass");

    // Find the register holding the live-across-call value; it must be
    // outside the clobber set, or the allocation itself would be wrong.
    let safe = a.func.blocks[0].insts[0].accesses()[0].expect_phys();
    assert!(safe.number() >= 2, "allocator must avoid the clobbers");

    // An unpinned remap is free to swap `safe` with a clobbered register.
    let mut swapped = a.func.clone();
    swapped.map_all_regs(|r| match r.as_phys() {
        Some(p) if p == safe => Reg::Phys(PReg(0)),
        Some(PReg(0)) => Reg::Phys(safe),
        _ => r,
    });
    let err = check_allocation(&swapped, &a.record)
        .expect_err("value live across the call now sits in a clobber");
    assert!(matches!(err, CheckError::Violations(_)), "got {err}");
}

/// The fix: the low-end pipeline pins the calling-convention clobbers, so
/// the remap search can never produce the permutation above.
#[test]
fn lowend_remap_pins_the_call_clobbers() {
    let setup = LowEndSetup::default();
    let rcfg = setup.remap_config();
    assert_eq!(
        rcfg.pinned, setup.call_clobbers,
        "remap must keep the clobber registers fixed"
    );
    assert!(!rcfg.pinned.is_empty(), "default setup has clobbers to pin");
}

/// Seeded corruption: take a really-compiled benchmark function, flip one
/// register field, and require the checker to reject it. This is the
/// "checker has teeth" acceptance case on real pipeline output.
#[test]
fn seeded_corrupt_allocation_is_rejected() {
    let spec = BenchSpec {
        name: "corrupt",
        seed: 0xDEC0DE,
        funcs: 1,
        pressure: 10,
        block_len: 8,
        loops_per_func: 1,
        max_depth: 1,
        mem_ratio: 0.2,
        call_ratio: 0.0,
        branch_ratio: 0.3,
        trip_range: (2, 5),
        muldiv_ratio: 0.1,
    };
    let p = generate(&spec);
    let cfg = AllocConfig::baseline(6);
    let a = DenseIrc.allocate(&p.funcs[0], &cfg).unwrap();
    check_allocation(&a.func, &a.record).expect("clean allocation must pass");

    let mut rejected = 0usize;
    let mut tried = 0usize;
    for bi in 0..a.func.blocks.len() {
        for ii in 0..a.func.blocks[bi].insts.len() {
            for (ri, r) in a.func.blocks[bi].insts[ii].accesses().into_iter().enumerate() {
                let Some(p) = r.as_phys() else { continue };
                let mut broken = a.func.clone();
                let flipped = Reg::Phys(PReg((p.number() + 1) % 6));
                let mut k = 0usize;
                broken.blocks[bi].insts[ii].map_regs(|r| {
                    let out = if k == ri { flipped } else { r };
                    k += 1;
                    out
                });
                tried += 1;
                if check_allocation(&broken, &a.record).is_err() {
                    rejected += 1;
                }
            }
        }
    }
    // Not every single-field flip is observable (a flipped *def* of a
    // dead-after value isn't), but the overwhelming majority must be.
    assert!(tried > 20, "corruption sweep too small: {tried}");
    assert!(
        rejected * 10 >= tried * 9,
        "checker caught only {rejected}/{tried} single-register corruptions"
    );
}

/// Full-pipeline spot check: a benchmark program compiled under every
/// approach with the checker enabled still compiles, and the checked
/// output is bit-identical to the unchecked compile (the checker is a
/// pure observer).
#[test]
fn checked_compile_matches_unchecked() {
    let spec = BenchSpec {
        name: "spot",
        seed: 41,
        funcs: 2,
        pressure: 12,
        block_len: 8,
        loops_per_func: 2,
        max_depth: 2,
        mem_ratio: 0.2,
        call_ratio: 0.1,
        branch_ratio: 0.3,
        trip_range: (2, 5),
        muldiv_ratio: 0.1,
    };
    let machine = LowEndConfig::default();
    for approach in [
        Approach::Baseline,
        Approach::Remapping,
        Approach::Select,
        Approach::OSpill,
        Approach::Coalesce,
        Approach::Adaptive,
    ] {
        let plain_setup = LowEndSetup::default();
        let mut plain = generate(&spec);
        compile_program(&mut plain, approach, &plain_setup).unwrap();

        let mut checked_setup = LowEndSetup::default();
        checked_setup.check = true;
        let mut checked = generate(&spec);
        let mut t = Telemetry::new();
        compile_program_telemetry(&mut checked, approach, &checked_setup, None, &mut t)
            .unwrap_or_else(|e| panic!("{}: {e}", approach.label()));
        assert_eq!(
            plain, checked,
            "{}: checker changed the compiled program",
            approach.label()
        );
        assert!(
            t.counter("checker.functions") >= checked.funcs.len() as u64,
            "{}: checker did not run on every function",
            approach.label()
        );
        assert_eq!(t.counter("checker.violations"), 0, "{}", approach.label());
        let r = simulate(&checked, &machine, &[]).unwrap();
        let want = simulate(&plain, &machine, &[]).unwrap();
        assert_eq!(r.ret_value, want.ret_value, "{}", approach.label());
    }
}
