//! Property tests of the register allocators.
//!
//! The strongest invariant available without a virtual-register
//! interpreter: a generated program compiled under *different allocators*
//! (and different register counts) must compute the same result on the
//! machine simulator. Any interference mistake, unsound coalesce, or
//! broken spill rewrite shows up as divergent output.

use dra_adjgraph::DiffParams;
use dra_core::lowend::{compile_program, Approach, LowEndSetup};
use dra_encoding::{insert_set_last_reg, EncodingConfig};
use dra_ir::{BinOp, Function, FunctionBuilder, PReg, Reg, VReg};
use dra_regalloc::{
    check_allocation, check_function_encoding, irc_allocate, AllocConfig, Allocator, Coalescing,
    DenseIrc, Ospill, ReferenceIrc, SelectStrategy, SpillMetric,
};
use dra_sim::{simulate, LowEndConfig};
use dra_workloads::mibench::{generate, BenchSpec};
use proptest::prelude::*;

/// A bounded random benchmark spec (all knobs in safe ranges).
fn arb_spec() -> impl Strategy<Value = BenchSpec> {
    (
        any::<u64>(),        // seed
        1usize..=3,          // funcs
        4usize..=13,         // pressure
        4usize..=12,         // block_len
        1usize..=2,          // loops per func
        1u32..=2,            // depth
        0.0f64..0.35,        // mem ratio
        0.0f64..0.15,        // call ratio
        0.0f64..0.5,         // branch ratio
        0.0f64..0.2,         // muldiv
    )
        .prop_map(
            |(seed, funcs, pressure, block_len, loops, depth, mem, call, branch, muldiv)| {
                BenchSpec {
                    name: "prop",
                    seed,
                    funcs,
                    pressure,
                    block_len,
                    loops_per_func: loops,
                    max_depth: depth,
                    mem_ratio: mem,
                    call_ratio: call,
                    branch_ratio: branch,
                    trip_range: (2, 6),
                    muldiv_ratio: muldiv,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        if cfg!(debug_assertions) { 6 } else { 24 }
    ))]

    /// All five approaches produce the same program result.
    #[test]
    fn approaches_agree_on_random_programs(spec in arb_spec()) {
        let setup = LowEndSetup::default();
        let machine = LowEndConfig::default();
        let mut expected: Option<Option<i64>> = None;
        for a in Approach::ALL {
            let mut p = generate(&spec);
            compile_program(&mut p, a, &setup)
                .unwrap_or_else(|e| panic!("{}: {e}", a.label()));
            let r = simulate(&p, &machine, &[]).unwrap_or_else(|e| panic!("{}: {e}", a.label()));
            match &expected {
                None => expected = Some(r.ret_value),
                Some(want) => prop_assert_eq!(
                    &r.ret_value, want,
                    "{} diverged on seed {:#x}", a.label(), spec.seed
                ),
            }
        }
    }

    /// More registers never increase the IRC spill count, and the result
    /// stays the same across register counts.
    #[test]
    fn more_registers_never_hurt(spec in arb_spec()) {
        let machine = LowEndConfig::default();
        let mut last_spills = usize::MAX;
        let mut expected: Option<Option<i64>> = None;
        for k in [6u16, 8, 12, 16] {
            let mut p = generate(&spec);
            let mut total_spills = 0usize;
            for f in &mut p.funcs {
                let cfg = AllocConfig::baseline(k);
                irc_allocate(f, &cfg).unwrap();
                total_spills += f.count_insts(|i| i.is_spill());
            }
            prop_assert!(
                total_spills <= last_spills,
                "k={k}: spills {} > {} with fewer registers",
                total_spills,
                last_spills
            );
            last_spills = total_spills;
            let r = simulate(&p, &machine, &[]).unwrap();
            match &expected {
                None => expected = Some(r.ret_value),
                Some(want) => prop_assert_eq!(&r.ret_value, want, "k={} diverged", k),
            }
        }
    }

    /// Every `Allocator` engine's output passes the symbolic checker on
    /// the shrinking-friendly op-list generator, under all four pipeline
    /// `AllocConfig`s. For the differential configs the property follows
    /// the full low-end tail: a (pinned-respecting) register permutation,
    /// the repair pass, and the decoder replay.
    #[test]
    fn allocator_outputs_pass_checker(ops in arb_ops()) {
        let f = build_ops(&ops);
        for eng in engines() {
            for cfg in configs() {
                let a = eng
                    .allocate(&f, &cfg)
                    .unwrap_or_else(|e| panic!("{} failed under {:?}: {e}", eng.name(), cfg.strategy));
                if let Err(e) = check_allocation(&a.func, &a.record) {
                    prop_assert!(
                        false,
                        "{} rejected by checker under {:?}: {e}",
                        eng.name(), cfg.strategy
                    );
                }
                if cfg.strategy == SelectStrategy::Differential {
                    let mut fd = a.func.clone();
                    fd.map_all_regs(|r| rotate_unpinned(r, cfg.k, &cfg.call_clobbers));
                    let enc = EncodingConfig::new(cfg.params);
                    insert_set_last_reg(&mut fd, &enc);
                    if let Err(e) = check_allocation(&fd, &a.record) {
                        prop_assert!(
                            false,
                            "{} remapped+repaired output rejected: {e}",
                            eng.name()
                        );
                    }
                    if let Err(e) = check_function_encoding(&fd, &enc) {
                        prop_assert!(false, "{} replay rejected: {e}", eng.name());
                    }
                }
            }
        }
    }

    /// Differential allocation at tight DiffN still verifies and agrees.
    #[test]
    fn tight_diffn_still_correct(spec in arb_spec()) {
        let setup = LowEndSetup {
            diff: DiffParams::new(12, 4), // much tighter than the eval's 8
            ..LowEndSetup::default()
        };
        let machine = LowEndConfig::default();

        let mut base = generate(&spec);
        compile_program(&mut base, Approach::Baseline, &setup).unwrap();
        let want = simulate(&base, &machine, &[]).unwrap().ret_value;

        let mut p = generate(&spec);
        compile_program(&mut p, Approach::Select, &setup).unwrap();
        let got = simulate(&p, &machine, &[]).unwrap().ret_value;
        prop_assert_eq!(got, want);
    }
}

/// One step of the shrinking-friendly straight-line generator (the op-list
/// form from `proptest_irc_equiv`, extended with calls so the clobber
/// transfer in the checker's dataflow is exercised). Indices are taken
/// modulo the live pool, so *any* byte sequence is a valid program and
/// proptest can shrink freely without invalidating it.
#[derive(Clone, Debug)]
enum Op {
    /// Define a fresh value.
    New(i8),
    /// Copy an existing pool value into a fresh vreg (coalesce fodder).
    Mov(u8),
    /// Combine two pool values into a fresh vreg.
    Add(u8, u8),
    /// Call a function on a pool value (clobber pressure across the call).
    Call(u8),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            any::<i8>().prop_map(Op::New),
            any::<u8>().prop_map(Op::Mov),
            (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Add(a, b)),
            any::<u8>().prop_map(Op::Call),
        ],
        1..40,
    )
}

/// Materialize an op list as a straight-line function whose final sum
/// keeps every defined value live — long op lists force pressure well past
/// any small `k` (spill + freeze transitions), `Mov` supplies coalescible
/// copies, and `Call` puts live ranges across clobber points.
fn build_ops(ops: &[Op]) -> Function {
    let mut b = FunctionBuilder::new("prop-ops");
    let mut pool: Vec<VReg> = Vec::new();
    let first = b.new_vreg();
    b.mov_imm(first, 1);
    pool.push(first);
    for op in ops {
        let d = b.new_vreg();
        match *op {
            Op::New(i) => b.mov_imm(d, i as i32),
            Op::Mov(s) => {
                let src = pool[s as usize % pool.len()];
                b.mov(d, src.into());
            }
            Op::Add(x, y) => {
                let l = pool[x as usize % pool.len()];
                let r = pool[y as usize % pool.len()];
                b.bin(BinOp::Add, d, l.into(), r.into());
            }
            Op::Call(s) => {
                let arg = pool[s as usize % pool.len()];
                b.call(0, vec![arg.into()], Some(d));
            }
        }
        pool.push(d);
    }
    let s = b.new_vreg();
    b.mov_imm(s, 0);
    for &v in &pool {
        b.bin(BinOp::Add, s, s.into(), v.into());
    }
    b.ret(Some(s.into()));
    b.finish()
}

/// The allocator configurations the pipeline exercises: plain baseline
/// under heavy pressure, biased select, differential select, and the
/// global-coverage spill metric with call clobbers.
fn configs() -> Vec<AllocConfig> {
    let mut biased = AllocConfig::baseline(8);
    biased.strategy = SelectStrategy::Biased;
    let mut coverage = AllocConfig::differential(DiffParams::lowend_12_8());
    coverage.spill_metric = SpillMetric::GlobalCoverage;
    coverage.call_clobbers = vec![PReg(0), PReg(1)];
    vec![
        AllocConfig::baseline(4),
        biased,
        AllocConfig::differential(DiffParams::new(12, 4)),
        coverage,
    ]
}

/// Every engine behind the [`Allocator`] trait.
fn engines() -> Vec<Box<dyn Allocator>> {
    vec![
        Box::new(DenseIrc),
        Box::new(ReferenceIrc),
        Box::new(Ospill),
        Box::new(Coalescing),
    ]
}

/// Rotate every non-pinned color one step (cyclically, within `k`) while
/// keeping the pinned registers fixed — the shape of permutation a
/// clobber-aware remap is allowed to produce.
fn rotate_unpinned(r: Reg, k: u16, pinned: &[PReg]) -> Reg {
    let Some(p) = r.as_phys() else { return r };
    if pinned.contains(&p) {
        return r;
    }
    let free: Vec<u8> = (0..k as u8).filter(|&n| !pinned.contains(&PReg(n))).collect();
    let i = free
        .iter()
        .position(|&n| n == p.number())
        .expect("allocated register within k");
    Reg::Phys(PReg(free[(i + 1) % free.len()]))
}
