//! Property tests of the register allocators.
//!
//! The strongest invariant available without a virtual-register
//! interpreter: a generated program compiled under *different allocators*
//! (and different register counts) must compute the same result on the
//! machine simulator. Any interference mistake, unsound coalesce, or
//! broken spill rewrite shows up as divergent output.

use dra_adjgraph::DiffParams;
use dra_core::lowend::{compile_program, Approach, LowEndSetup};
use dra_regalloc::{irc_allocate, AllocConfig};
use dra_sim::{simulate, LowEndConfig};
use dra_workloads::mibench::{generate, BenchSpec};
use proptest::prelude::*;

/// A bounded random benchmark spec (all knobs in safe ranges).
fn arb_spec() -> impl Strategy<Value = BenchSpec> {
    (
        any::<u64>(),        // seed
        1usize..=3,          // funcs
        4usize..=13,         // pressure
        4usize..=12,         // block_len
        1usize..=2,          // loops per func
        1u32..=2,            // depth
        0.0f64..0.35,        // mem ratio
        0.0f64..0.15,        // call ratio
        0.0f64..0.5,         // branch ratio
        0.0f64..0.2,         // muldiv
    )
        .prop_map(
            |(seed, funcs, pressure, block_len, loops, depth, mem, call, branch, muldiv)| {
                BenchSpec {
                    name: "prop",
                    seed,
                    funcs,
                    pressure,
                    block_len,
                    loops_per_func: loops,
                    max_depth: depth,
                    mem_ratio: mem,
                    call_ratio: call,
                    branch_ratio: branch,
                    trip_range: (2, 6),
                    muldiv_ratio: muldiv,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        if cfg!(debug_assertions) { 6 } else { 24 }
    ))]

    /// All five approaches produce the same program result.
    #[test]
    fn approaches_agree_on_random_programs(spec in arb_spec()) {
        let setup = LowEndSetup::default();
        let machine = LowEndConfig::default();
        let mut expected: Option<Option<i64>> = None;
        for a in Approach::ALL {
            let mut p = generate(&spec);
            compile_program(&mut p, a, &setup)
                .unwrap_or_else(|e| panic!("{}: {e}", a.label()));
            let r = simulate(&p, &machine, &[]).unwrap_or_else(|e| panic!("{}: {e}", a.label()));
            match &expected {
                None => expected = Some(r.ret_value),
                Some(want) => prop_assert_eq!(
                    &r.ret_value, want,
                    "{} diverged on seed {:#x}", a.label(), spec.seed
                ),
            }
        }
    }

    /// More registers never increase the IRC spill count, and the result
    /// stays the same across register counts.
    #[test]
    fn more_registers_never_hurt(spec in arb_spec()) {
        let machine = LowEndConfig::default();
        let mut last_spills = usize::MAX;
        let mut expected: Option<Option<i64>> = None;
        for k in [6u16, 8, 12, 16] {
            let mut p = generate(&spec);
            let mut total_spills = 0usize;
            for f in &mut p.funcs {
                let cfg = AllocConfig::baseline(k);
                irc_allocate(f, &cfg).unwrap();
                total_spills += f.count_insts(|i| i.is_spill());
            }
            prop_assert!(
                total_spills <= last_spills,
                "k={k}: spills {} > {} with fewer registers",
                total_spills,
                last_spills
            );
            last_spills = total_spills;
            let r = simulate(&p, &machine, &[]).unwrap();
            match &expected {
                None => expected = Some(r.ret_value),
                Some(want) => prop_assert_eq!(&r.ret_value, want, "k={} diverged", k),
            }
        }
    }

    /// Differential allocation at tight DiffN still verifies and agrees.
    #[test]
    fn tight_diffn_still_correct(spec in arb_spec()) {
        let setup = LowEndSetup {
            diff: DiffParams::new(12, 4), // much tighter than the eval's 8
            ..LowEndSetup::default()
        };
        let machine = LowEndConfig::default();

        let mut base = generate(&spec);
        compile_program(&mut base, Approach::Baseline, &setup).unwrap();
        let want = simulate(&base, &machine, &[]).unwrap().ret_value;

        let mut p = generate(&spec);
        compile_program(&mut p, Approach::Select, &setup).unwrap();
        let got = simulate(&p, &machine, &[]).unwrap().ret_value;
        prop_assert_eq!(got, want);
    }
}
