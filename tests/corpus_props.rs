//! Properties of the profile-driven corpus generator (DESIGN.md §13).
//!
//! Everything `generate_from_profile` emits must be a first-class
//! pipeline citizen: its rendered text parses back, the program
//! validates, every function allocates cleanly under every `Allocator`
//! engine and passes the symbolic checker, and the whole corpus compiles
//! to identical artifacts at any batch thread count and with the scratch
//! arenas on or off. These are the load-bearing guarantees behind
//! `drac corpus` / `drac bench-corpus`: a corpus that occasionally emits
//! an invalid program would poison every throughput number downstream.

use dra_adjgraph::DiffParams;
use dra_core::batch::run_batch;
use dra_core::corpus::corpus_setup;
use dra_core::lowend::Approach;
use dra_core::session::CompileSession;
use dra_regalloc::{
    check_allocation, AllocConfig, Allocator, Coalescing, DenseIrc, Ospill, ReferenceIrc,
};
use dra_workloads::{builtin_profile, builtin_profiles, generate_from_profile};
use proptest::prelude::*;

/// Every engine behind the [`Allocator`] trait.
fn engines() -> Vec<Box<dyn Allocator>> {
    vec![
        Box::new(DenseIrc),
        Box::new(ReferenceIrc),
        Box::new(Ospill),
        Box::new(Coalescing),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        if cfg!(debug_assertions) { 4 } else { 12 }
    ))]

    /// Any (builtin profile, seed, count) corpus: exact function count,
    /// parse round-trip, structural validity, and a checker-clean
    /// allocation from all four engines.
    #[test]
    fn generated_corpora_are_parse_valid_and_checker_clean(
        which in 0usize..4,
        seed in any::<u64>(),
        count in 1usize..=10,
    ) {
        let profile = builtin_profiles().swap_remove(which);
        let corpus = generate_from_profile(&profile, seed, count)
            .expect("builtin profiles always generate");
        let total: usize = corpus.iter().map(|p| p.funcs.len()).sum();
        prop_assert_eq!(total, count, "{} functions requested", count);

        let cfg = AllocConfig::differential(DiffParams::lowend_12_8());
        for (pi, p) in corpus.iter().enumerate() {
            let text = p.to_string();
            let back = dra_ir::parse::parse_program(&text)
                .unwrap_or_else(|e| panic!("program {pi}: generated text fails to parse: {e}"));
            prop_assert_eq!(back.funcs.len(), p.funcs.len());
            prop_assert_eq!(back.num_insts(), p.num_insts());
            dra_ir::validate::validate_program(p)
                .unwrap_or_else(|e| panic!("program {pi}: generated program invalid: {e:?}"));

            for f in &p.funcs {
                for eng in engines() {
                    let a = eng.allocate(f, &cfg).unwrap_or_else(|e| {
                        panic!("program {pi}: {} failed on {}: {e}", eng.name(), f.name)
                    });
                    if let Err(e) = check_allocation(&a.func, &a.record) {
                        prop_assert!(
                            false,
                            "program {}: {} rejected by checker on {}: {e}",
                            pi, eng.name(), f.name
                        );
                    }
                }
            }
        }
    }
}

/// What one compile produced, in full: the measured quantities plus the
/// compiled program's rendered text (byte-level equality).
fn compile_fingerprints(texts: &[String], threads: usize) -> Vec<(u64, u64, usize, String)> {
    let session = CompileSession::new(corpus_setup());
    run_batch(texts, threads, |_, text| {
        let (run, _) = session
            .compile_source(text, Approach::Adaptive)
            .expect("corpus programs compile");
        (
            run.cycles,
            run.code_bits,
            run.total_insts,
            run.program.to_string(),
        )
    })
}

/// `(profile, seed, count)` is the whole identity of a corpus: two
/// generations are byte-identical, and the compiled artifacts are
/// byte-identical at 1, 2, and 8 batch threads.
#[test]
fn corpus_is_byte_identical_at_any_thread_count() {
    let profile = builtin_profile("deep-cfg").unwrap();
    let corpus = generate_from_profile(&profile, 42, 48).unwrap();
    let again = generate_from_profile(&profile, 42, 48).unwrap();
    let texts: Vec<String> = corpus.iter().map(|p| p.to_string()).collect();
    let texts_again: Vec<String> = again.iter().map(|p| p.to_string()).collect();
    assert_eq!(texts, texts_again, "generation must be reproducible");

    let baseline = compile_fingerprints(&texts, 1);
    for threads in [2, 8] {
        assert_eq!(
            compile_fingerprints(&texts, threads),
            baseline,
            "{threads}-thread compile diverged from single-threaded"
        );
    }
}

/// The scratch arenas are a pure allocation optimization: with reuse off
/// (every buffer freshly allocated) and on (thread-local pools), the
/// compiled corpus is bit-identical.
#[test]
fn scratch_arenas_do_not_change_compiled_output() {
    let profile = builtin_profile("embedded-dsp").unwrap();
    let corpus = generate_from_profile(&profile, 7, 24).unwrap();
    let texts: Vec<String> = corpus.iter().map(|p| p.to_string()).collect();

    let prev = dra_ir::scratch::reuse_enabled();
    dra_ir::scratch::set_reuse(false);
    let off = compile_fingerprints(&texts, 2);
    dra_ir::scratch::set_reuse(true);
    let on = compile_fingerprints(&texts, 2);
    dra_ir::scratch::set_reuse(prev);
    assert_eq!(off, on, "arena reuse must not change any artifact");
}
