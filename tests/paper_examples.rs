//! The paper's worked examples, reproduced end to end.
//!
//! Each test cites the section/figure it reenacts; together they pin the
//! implementation to the paper's own numbers.

use dra_adjgraph::{AdjacencyGraph, DiffParams};
use dra_encoding::{encode_fields, EncodingConfig};
use dra_ir::{FunctionBuilder, Inst, PReg, RegClass};

fn mov(dst: u8, src: u8) -> Inst {
    Inst::Mov {
        dst: PReg(dst).into(),
        src: PReg(src).into(),
    }
}

/// Section 2: "consider that we want to access registers R1, R3, and R8 in
/// that order, the encoded differences are then 2 (from R1 to R3) and 5
/// (from R3 to R8)."
#[test]
fn section2_running_example() {
    let p = DiffParams::new(16, 8);
    assert_eq!(p.encode(1, 3), 2);
    assert_eq!(p.encode(3, 8), 5);
    assert_eq!(p.decode(1, 2), 3);
    assert_eq!(p.decode(3, 5), 8);
}

/// Definition 1's examples: `4 mod 3 = 1`, `-1 mod 3 = 2`.
#[test]
fn definition1_modulo() {
    let p = DiffParams::direct(3);
    // 4 mod 3 via encode(0 -> 1) with a wrap: (1 - 0) = 1; and the
    // negative case via encode(1 -> 0) = -1 mod 3 = 2.
    assert_eq!(p.encode(1, 0), 2);
    assert_eq!(p.encode(2, 0), 1);
}

/// Figure 2: with `RegN = 4` registers and only differences {0, 1}
/// (`DiffN = 2`, one bit per field), all four registers remain
/// addressable; the example's access sequence encodes entirely as 0s and
/// 1s — a 50% register-field saving.
#[test]
fn figure2_one_bit_fields() {
    let params = DiffParams::new(4, 2);
    assert_eq!(params.diff_w(), 1);
    assert_eq!(params.reg_w(), 2);
    assert_eq!(params.bits_saved_per_field(), 1);

    // Access sequence marching up the circle: r0,r1 r1,r2 r2,r3 r3,r3.
    let mut b = FunctionBuilder::new("fig2");
    b.push(Inst::SetLastReg {
        class: RegClass::Int,
        value: 0,
        delay: 0,
    });
    b.push(mov(1, 0));
    b.push(mov(2, 1));
    b.push(mov(3, 2));
    b.push(mov(3, 3));
    b.ret(None);
    let f = b.finish();
    let cfg = EncodingConfig::new(params);
    let fields = encode_fields(&f, &cfg).expect("all differences in {0,1}");
    let codes: Vec<u16> = fields[0].iter().flatten().copied().collect();
    assert_eq!(
        codes,
        vec![0, 1, 0, 1, 0, 1, 0, 0],
        "every field is one bit's worth of information"
    );
}

/// Section 2.2.1: "if the first instruction is R1 = R0 + R2, we need to
/// encode (2 - 0) mod 4 = 2 for the second source operand" — out of range
/// under DiffN = 2.
#[test]
fn section221_out_of_range() {
    let p = DiffParams::new(4, 2);
    assert_eq!(p.encode(0, 2), 2);
    assert!(!p.in_range(0, 2));
}

/// Figure 5: the adjacency graph of the example has edge (L1, L2) with
/// weight 2 and six weight-1 edges; an optimal assignment under
/// `RegN = 3, DiffN = 2` has zero cost.
#[test]
fn figure5_optimal_assignment() {
    let mut g = AdjacencyGraph::new(6);
    g.add_edge(0, 1, 2.0);
    for (a, b) in [(1, 2), (2, 3), (3, 0), (1, 4), (4, 3), (3, 5)] {
        g.add_edge(a, b, 1.0);
    }
    assert_eq!(g.total_weight(), 8.0);
    let params = DiffParams::new(3, 2);
    // Exhaustive search over all register assignments (3^6 with the
    // interference constraints relaxed — the paper's Figure 5.e solution
    // exists, so the optimum must be 0).
    let mut best = f64::INFINITY;
    for mask in 0..3u32.pow(6) {
        let mut m = mask;
        let mut assign = [0u8; 6];
        for slot in &mut assign {
            *slot = (m % 3) as u8;
            m /= 3;
        }
        let c = g.assignment_cost(|n| Some(assign[n as usize]), params);
        best = best.min(c);
        if best == 0.0 {
            break;
        }
    }
    assert_eq!(best, 0.0, "a zero-cost assignment exists (Figure 5.e)");
}

/// Section 2.3: the `set_last_reg(2, 1)` example — after encoding source
/// operand 1, `last_reg` is set to 2, so the second field encodes as 0.
#[test]
fn section23_delayed_set() {
    let mut b = FunctionBuilder::new("f");
    b.push(Inst::SetLastReg {
        class: RegClass::Int,
        value: 0,
        delay: 0,
    });
    b.push(Inst::SetLastReg {
        class: RegClass::Int,
        value: 2,
        delay: 1,
    });
    b.push(Inst::SetLastReg {
        class: RegClass::Int,
        value: 1,
        delay: 2,
    });
    b.push(Inst::Bin {
        op: dra_ir::BinOp::Add,
        dst: PReg(1).into(),
        lhs: PReg(0).into(),
        rhs: PReg(2).into(),
    });
    b.ret(None);
    let f = b.finish();
    let cfg = EncodingConfig::new(DiffParams::new(4, 2));
    let fields = encode_fields(&f, &cfg).unwrap();
    // R0 encodes 0 against last_reg = 0; the delayed set fires, so R2
    // also encodes 0; the second delayed set handles the destination.
    assert_eq!(fields[0][3], vec![0, 0, 0]);
}

/// Section 1's motivation: "register field takes about 28% of the Alpha
/// binary and 25% of the ARM binary" — our ALU-dense programs sit in the
/// same ballpark under the LEAF16 geometry.
#[test]
fn section1_register_field_share() {
    let p = dra_workloads::benchmark("sha");
    let frac =
        dra_isa::register_field_fraction(&p, &dra_isa::IsaGeometry::leaf16(3));
    assert!(
        frac > 0.15 && frac < 0.60,
        "register fields are a large share of the binary: {frac}"
    );
}

/// Section 2.1: the decoder hardware is negligible — the paper's specific
/// numbers, checked as arithmetic.
#[test]
fn section21_hardware_claims() {
    use dra_encoding::hardware::{cycle_fraction, decoder_cost};
    let c = decoder_cost(16, 3);
    assert_eq!(c.last_reg_bits, 4);
    assert!(c.delay_ns <= 0.41);
    assert!(cycle_fraction(&c, 500.0) <= 0.21, "1/5 cycle at 500 MHz");
    let big = decoder_cost(128, 3);
    assert_eq!(big.last_reg_bits, 7, "Itanium-scale needs 7-bit adders");
}
