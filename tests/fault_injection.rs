//! Fault-injection campaigns against the full pipeline.
//!
//! Three layers of the containment story:
//!
//! * **Stream faults** — seeded corruption of real benchmarks' encoded
//!   field streams must always be *detected* (a structured `DecodeError`
//!   naming the site) or *provably benign* (decode bit-equal to the clean
//!   one); silent divergence is asserted to be zero. This is the paper's
//!   safety property run in reverse: the verifier that proves repaired
//!   programs decode correctly must also refuse everything else.
//! * **Decoder totality** — `decode_trace_fields` over arbitrary garbage
//!   streams, traces, and power-on states returns `Ok`/`Err`, never
//!   panics.
//! * **Pipeline degradation** — injected per-function alloc/verify
//!   failures and simulation failures degrade to direct encoding (same
//!   program answer, `degrade.*` telemetry, `RemapStats::degraded`
//!   markers) instead of failing the run, and `degrade = false` restores
//!   the hard error.

use dra_core::faults::{run_fault_campaign, FaultOutcome, PipelineFaults, SplitMix64};
use dra_core::lowend::{compile_and_run, compile_and_run_source, Approach, LowEndSetup};
use dra_encoding::{decode_trace_fields, encode_fields, EncodingConfig, LastReg};
use dra_ir::{BlockId, FunctionBuilder, Inst, PReg};
use proptest::prelude::*;

fn quick_setup() -> LowEndSetup {
    LowEndSetup {
        remap_starts: 50,
        remap_threads: 1,
        batch_threads: 1,
        ..LowEndSetup::default()
    }
}

/// Stream-fault campaigns over real compiled benchmarks: every injected
/// fault adjudicated, detections present, zero divergence.
#[test]
fn campaigns_on_compiled_benchmarks_fully_adjudicate() {
    let setup = quick_setup();
    let cfg = EncodingConfig::new(setup.diff);
    for (name, seed) in [("crc32", 11u64), ("bitcount", 22), ("sha", 33)] {
        let run = compile_and_run(name, Approach::Select, &setup).unwrap();
        let f = &run.program.funcs[run.program.entry as usize];
        let report = run_fault_campaign(f, &cfg, &run.entry_trace, seed, 128)
            .unwrap_or_else(|e| panic!("{name}: clean decode failed: {e}"));
        assert_eq!(report.injected, 128, "{name}");
        assert_eq!(
            report.diverged, 0,
            "{name}: a fault decoded to different registers silently"
        );
        assert!(
            report.fully_adjudicated(),
            "{name}: {} faults unaccounted",
            report.injected - report.detected - report.benign
        );
        assert!(report.detected > 0, "{name}: campaign detected nothing");
        assert!(
            report.benign > 0,
            "{name}: campaign should also hit never-consumed state"
        );
        // Detected outcomes carry precise diagnostics (site naming).
        for (fault, outcome) in &report.outcomes {
            if let FaultOutcome::Detected(e) = outcome {
                let text = format!("{e}");
                assert!(
                    text.contains("bb") || text.contains("trace"),
                    "fault `{fault}` detected without a site: {text}"
                );
            }
        }
    }
}

/// The campaign is a pure function of its seed.
#[test]
fn campaigns_are_deterministic() {
    let setup = quick_setup();
    let cfg = EncodingConfig::new(setup.diff);
    let run = compile_and_run("crc32", Approach::Select, &setup).unwrap();
    let f = &run.program.funcs[run.program.entry as usize];
    let a = run_fault_campaign(f, &cfg, &run.entry_trace, 7, 48).unwrap();
    let b = run_fault_campaign(f, &cfg, &run.entry_trace, 7, 48).unwrap();
    assert_eq!(a, b);
    let c = run_fault_campaign(f, &cfg, &run.entry_trace, 8, 48).unwrap();
    assert_ne!(a.outcomes, c.outcomes, "different seed, different faults");
}

/// A tiny fixed function for decoder-totality fuzzing.
fn totality_function() -> dra_ir::Function {
    let mut b = FunctionBuilder::new("tot");
    b.push(Inst::Mov {
        dst: PReg(1).into(),
        src: PReg(0).into(),
    });
    let t = b.new_block();
    let e = b.new_block();
    b.cond_br(dra_ir::Cond::Lt, PReg(0).into(), PReg(1).into(), t, e);
    b.switch_to(t);
    b.push(Inst::Mov {
        dst: PReg(5).into(),
        src: PReg(1).into(),
    });
    b.ret(None);
    b.switch_to(e);
    b.push(Inst::Mov {
        dst: PReg(11).into(),
        src: PReg(5).into(),
    });
    b.ret(None);
    b.finish()
}

proptest! {
    /// Decoder totality: arbitrary stream shapes, arbitrary codes,
    /// arbitrary traces, arbitrary power-on state — `Ok` or `Err`, never
    /// a panic, never an out-of-bounds index.
    #[test]
    fn decoder_is_total_on_arbitrary_streams(
        blocks in proptest::collection::vec(
            proptest::collection::vec(
                proptest::collection::vec(0u16..64, 0..4),
                0..6,
            ),
            0..5,
        ),
        trace in proptest::collection::vec(0u32..8, 0..12),
        init in 0u8..32,
        known in any::<bool>(),
    ) {
        let f = totality_function();
        let cfg = EncodingConfig::new(dra_adjgraph::DiffParams::new(12, 8));
        let trace: Vec<BlockId> = trace.into_iter().map(BlockId).collect();
        let init = if known { LastReg::known(init) } else { LastReg::default() };
        let _ = decode_trace_fields(&f, &cfg, &blocks, &trace, init);
    }

    /// Totality also over *shape-correct* streams with corrupt codes: the
    /// stream matches a real compiled function's block/instruction
    /// structure, so the decoder gets past the shape checks and into the
    /// arithmetic — and walks a real execution trace while at it.
    #[test]
    fn decoder_is_total_on_shape_correct_garbage(
        seed in any::<u64>(),
        init in 0u8..32,
    ) {
        let (f, clean, trace, cfg) = shape_correct_seed();
        let mut encoded = clean.clone();
        let mut rng = SplitMix64::new(seed);
        for block in &mut encoded {
            for fields in block {
                for code in fields {
                    *code = rng.below(64) as u16;
                }
            }
        }
        let _ = decode_trace_fields(f, cfg, &encoded, trace, LastReg::known(init));
    }
}

type ShapeSeed = (
    dra_ir::Function,
    Vec<Vec<Vec<u16>>>,
    Vec<BlockId>,
    EncodingConfig,
);

/// A repaired, encodable function plus its clean stream and a real trace —
/// compiled once, corrupted per proptest case.
fn shape_correct_seed() -> &'static ShapeSeed {
    static SEED: std::sync::OnceLock<ShapeSeed> = std::sync::OnceLock::new();
    SEED.get_or_init(|| {
        let setup = quick_setup();
        let cfg = EncodingConfig::new(setup.diff);
        let run = compile_and_run("bitcount", Approach::Select, &setup).unwrap();
        let f = run.program.funcs[run.program.entry as usize].clone();
        let encoded = encode_fields(&f, &cfg).unwrap();
        (f, encoded, run.entry_trace, cfg)
    })
}

/// An injected allocation failure degrades exactly that function to
/// direct encoding; the program still runs and computes the clean answer.
#[test]
fn injected_alloc_failure_degrades_function_not_program() {
    let setup = quick_setup();
    let clean = compile_and_run("crc32", Approach::Select, &setup).unwrap();

    let mut faulty = quick_setup();
    faulty.faults.fail_alloc_funcs.insert(0);
    let run = compile_and_run("crc32", Approach::Select, &faulty)
        .expect("degradation should contain the injected failure");
    assert_eq!(run.ret_value, clean.ret_value, "degraded run still correct");
    assert_eq!(run.telemetry.counter("degrade.programs"), 1);
    assert!(run.telemetry.counter("degrade.functions") >= 1);
    assert_eq!(
        run.telemetry.counter("degrade.injected"),
        run.telemetry.counter("degrade.functions"),
        "every degraded function traces back to the injection"
    );
    let degraded: Vec<_> = run.remap.iter().filter(|s| s.degraded).collect();
    assert_eq!(degraded.len(), 1, "exactly one function marked degraded");
    assert!(
        degraded.iter().all(|s| s.evaluations == 0 && s.starts_run == 0),
        "markers are inert"
    );
}

#[test]
fn injected_verify_failure_degrades_too() {
    let mut faulty = quick_setup();
    faulty.faults.fail_verify_funcs.insert(0);
    for approach in [Approach::Remapping, Approach::Select, Approach::Coalesce] {
        let clean = compile_and_run("bitcount", approach, &quick_setup()).unwrap();
        let run = compile_and_run("bitcount", approach, &faulty)
            .unwrap_or_else(|e| panic!("{}: {e}", approach.label()));
        assert_eq!(run.ret_value, clean.ret_value, "{}", approach.label());
        assert!(run.telemetry.counter("degrade.functions") >= 1);
        assert!(run.remap.iter().any(|s| s.degraded));
    }
}

#[test]
fn injected_sim_failure_degrades_whole_program() {
    let setup = quick_setup();
    let clean = compile_and_run("crc32", Approach::Select, &setup).unwrap();
    let direct = compile_and_run("crc32", Approach::Baseline, &setup).unwrap();

    let mut faulty = quick_setup();
    faulty.faults.fail_sim = true;
    let run = compile_and_run("crc32", Approach::Select, &faulty).unwrap();
    assert_eq!(run.ret_value, clean.ret_value);
    assert_eq!(run.telemetry.counter("degrade.sim"), 1);
    assert!(run.remap.iter().all(|s| s.degraded), "every slot marked");
    // The degraded artifact is the direct compile: repair-free.
    assert_eq!(run.set_last_regs, 0);
    assert_eq!(run.spill_insts, direct.spill_insts);
}

#[test]
fn degradation_off_restores_the_hard_error() {
    use dra_core::lowend::PipelineError;
    let mut faulty = quick_setup();
    faulty.degrade = false;
    faulty.faults.fail_alloc_funcs.insert(0);
    match compile_and_run("crc32", Approach::Select, &faulty) {
        Err(PipelineError::Injected { stage: "alloc", .. }) => {}
        other => panic!("expected the injected error, got {other:?}"),
    }
    faulty.faults.fail_alloc_funcs.clear();
    faulty.faults.fail_sim = true;
    match compile_and_run("crc32", Approach::Select, &faulty) {
        Err(PipelineError::Injected {
            stage: "simulate", ..
        }) => {}
        other => panic!("expected the injected sim error, got {other:?}"),
    }
}

#[test]
fn direct_approaches_ignore_differential_faults() {
    let mut faulty = quick_setup();
    faulty.faults.fail_alloc_funcs.insert(0);
    faulty.faults.fail_verify_funcs.insert(0);
    faulty.faults.fail_sim = true;
    for approach in [Approach::Baseline, Approach::OSpill] {
        let clean = compile_and_run("crc32", approach, &quick_setup()).unwrap();
        let run = compile_and_run("crc32", approach, &faulty).unwrap();
        assert_eq!(run.ret_value, clean.ret_value, "{}", approach.label());
        assert_eq!(run.telemetry.counter("degrade.programs"), 0);
    }
}

#[test]
fn clean_runs_are_untouched_by_the_lattice() {
    // The degradation machinery must be invisible when nothing fails:
    // bit-identical results with degrade on and off.
    let on = quick_setup();
    let mut off = quick_setup();
    off.degrade = false;
    for approach in [Approach::Select, Approach::Adaptive] {
        let a = compile_and_run("crc32", approach, &on).unwrap();
        let b = compile_and_run("crc32", approach, &off).unwrap();
        assert_eq!(a.program, b.program, "{}", approach.label());
        assert_eq!(a.ret_value, b.ret_value);
        assert_eq!(a.telemetry.counter("degrade.programs"), 0);
    }
}

#[test]
fn hostile_source_text_is_an_error_not_a_panic() {
    use dra_core::lowend::PipelineError;
    let setup = quick_setup();
    for text in [
        "",
        "fn f)(:\nbb0:\n    ret\n",
        "fn f([]):\nbb0:\n    br bb4000000000\n",
        "fn f([]):\nbb0:\n    v0 = frobnicate v1, v2\n",
        "fn f([]):\nbb0:\n    nop\n", // missing terminator
        "fn f([]):\nbb0:\n    call f99()\n    ret\n", // callee out of range
    ] {
        match compile_and_run_source(text, Approach::Select, &setup) {
            Err(PipelineError::Parse(_) | PipelineError::Validate { .. }) => {}
            other => panic!("hostile text {text:?} produced {other:?}"),
        }
    }
    // And well-formed text compiles end to end.
    let run = compile_and_run_source(
        "fn main([]):\nbb0:\n    v0 = mov #21\n    v1 = add v0, v0\n    ret v1\n",
        Approach::Select,
        &setup,
    )
    .unwrap();
    assert_eq!(run.ret_value, Some(42));
}

#[test]
fn pipeline_fault_plans_are_seeded_and_deterministic() {
    let a = PipelineFaults::from_seed(3, 30, 4);
    let b = PipelineFaults::from_seed(3, 30, 4);
    assert_eq!(a, b);
    assert!(!a.is_clean());
    assert!(PipelineFaults::from_seed(0, 30, 4).is_clean());
}
