//! The batch driver's determinism contract: the same inputs produce the
//! same outputs at any worker count (1, 2, 8), for both the low-end
//! benchmark matrix and the high-end loop sweep.
//!
//! The only fields excluded are the remap search's work counters
//! (`evaluations`, `starts_run`, `search_nanos`): they measure wall-clock
//! and scheduling, not the compilation result, and are documented as
//! schedule-dependent by `RemapConfig::threads`. Telemetry spans are
//! wall-clock by definition and are likewise excluded; telemetry
//! *counters* are part of the contract, with the same remap-work carve-out
//! when the parallel remap search is enabled.

use dra_core::batch::{run_batch, run_lowend_matrix, run_lowend_matrix_with_telemetry};
use dra_core::highend::run_highend_sweep;
use dra_core::lowend::{Approach, LowEndRun, LowEndSetup};
use dra_workloads::{generate_loop_suite, LoopSuiteConfig};

/// Zero the schedule-dependent remap work counters and drop wall-clock
/// telemetry spans.
fn normalized(mut r: LowEndRun) -> LowEndRun {
    for st in &mut r.remap {
        st.evaluations = 0;
        st.starts_run = 0;
        st.search_nanos = 0;
    }
    r.telemetry.clear_spans();
    r.telemetry.set_counter("remap.evaluations", 0);
    r.telemetry.set_counter("remap.starts_run", 0);
    r
}

#[test]
fn lowend_matrix_identical_across_thread_counts() {
    let names = ["crc32", "bitcount", "sha"];
    let approaches = [
        Approach::Baseline,
        Approach::Remapping,
        Approach::Select,
        Approach::Adaptive,
    ];
    // Few remap starts keep the test quick; determinism must hold at any
    // configuration.
    let mut setup = LowEndSetup::default();
    setup.remap_starts = 50;

    let mut reference: Option<Vec<Vec<LowEndRun>>> = None;
    for threads in [1usize, 2, 8] {
        setup.batch_threads = threads;
        let matrix: Vec<Vec<LowEndRun>> = run_lowend_matrix(&names, &approaches, &setup)
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|r| normalized(r.expect("cell compiles")))
                    .collect()
            })
            .collect();
        match &reference {
            None => reference = Some(matrix),
            Some(want) => assert_eq!(
                want, &matrix,
                "matrix diverged at batch_threads = {threads}"
            ),
        }
    }
}

#[test]
fn telemetry_counter_aggregates_identical_across_thread_counts() {
    let names = ["crc32", "bitcount", "sha"];
    let approaches = [
        Approach::Baseline,
        Approach::Remapping,
        Approach::Select,
        Approach::Adaptive,
    ];
    // With a single remap-search thread even the remap work counters are
    // schedule-invariant, so the *entire* aggregated counter map must be
    // bit-identical at any batch width.
    let mut setup = LowEndSetup::default();
    setup.remap_starts = 50;
    setup.remap_threads = 1;

    let mut reference = None;
    for threads in [1usize, 2, 8] {
        setup.batch_threads = threads;
        let (_, mut telemetry) = run_lowend_matrix_with_telemetry(&names, &approaches, &setup);
        telemetry.clear_spans();
        // The dense IRC engine's per-stage work counters ride along in the
        // whole-map comparison below; make their presence explicit so the
        // pinning can't silently pass if they stop being emitted. (Freeze
        // may legitimately be 0 on these workloads, so only its key is
        // required.)
        for key in ["irc.simplify", "irc.coalesce", "irc.freeze", "irc.spill"] {
            assert!(
                telemetry.counters().contains_key(key),
                "counter {key} missing at batch_threads = {threads}"
            );
        }
        assert!(telemetry.counter("irc.simplify") > 0, "no simplify steps recorded");
        match &reference {
            None => reference = Some(telemetry),
            Some(want) => assert_eq!(
                want, &telemetry,
                "telemetry counters diverged at batch_threads = {threads}"
            ),
        }
    }
}

#[test]
fn highend_sweep_identical_across_thread_counts() {
    let suite = generate_loop_suite(&LoopSuiteConfig {
        n_loops: 60,
        hungry_fraction: 0.2,
        seed: 11,
    });
    let reg_ns = [32u16, 48, 64];
    let want = run_highend_sweep(&suite, &reg_ns, 1);
    for threads in [2usize, 8] {
        let got = run_highend_sweep(&suite, &reg_ns, threads);
        assert_eq!(want, got, "sweep diverged at {threads} threads");
    }
}

#[test]
fn run_batch_output_is_in_item_order_at_any_width() {
    // Uneven per-item cost exercises the work-stealing claim order.
    let items: Vec<u64> = (0..64).collect();
    let expensive = |_, &x: &u64| {
        let mut acc = x;
        for i in 0..(x % 7) * 10_000 {
            acc = acc.wrapping_mul(31).wrapping_add(i);
        }
        (x, acc)
    };
    let want = run_batch(&items, 1, expensive);
    for threads in [2usize, 3, 8, 16] {
        assert_eq!(
            want,
            run_batch(&items, threads, expensive),
            "diverged at {threads} threads"
        );
    }
}
