//! The batch driver's determinism contract: the same inputs produce the
//! same outputs at any worker count (1, 2, 8), for both the low-end
//! benchmark matrix and the high-end loop sweep.
//!
//! The only field excluded is the remap search's wall-clock measurement
//! (`search_nanos`) and, for the same reason, telemetry spans. The remap
//! *work* counters (`evaluations`, `starts_run`, `cycle_moves`,
//! `bb_nodes`) are part of the contract: the portfolio splits its
//! evaluation budget deterministically across restart tasks and never
//! exits early based on another task's result, so they are pure functions
//! of the input at any thread count.

use dra_core::batch::{run_batch, run_lowend_matrix, run_lowend_matrix_with_telemetry};
use dra_core::highend::run_highend_sweep;
use dra_core::lowend::{Approach, LowEndRun, LowEndSetup, PipelineError};
use dra_workloads::{generate_loop_suite, LoopSuiteConfig};

/// Zero the wall-clock remap field and drop wall-clock telemetry spans;
/// everything else — work counters included — must match bit-for-bit.
fn normalized(mut r: LowEndRun) -> LowEndRun {
    for st in &mut r.remap {
        st.search_nanos = 0;
    }
    r.telemetry.clear_spans();
    r
}

#[test]
fn lowend_matrix_identical_across_thread_counts() {
    let names = ["crc32", "bitcount", "sha"];
    let approaches = [
        Approach::Baseline,
        Approach::Remapping,
        Approach::Select,
        Approach::Adaptive,
    ];
    // Few remap starts keep the test quick; determinism must hold at any
    // configuration.
    let mut setup = LowEndSetup::default();
    setup.remap_starts = 50;

    let mut reference: Option<Vec<Vec<LowEndRun>>> = None;
    for threads in [1usize, 2, 8] {
        setup.batch_threads = threads;
        let matrix: Vec<Vec<LowEndRun>> = run_lowend_matrix(&names, &approaches, &setup)
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|r| normalized(r.expect("cell compiles")))
                    .collect()
            })
            .collect();
        match &reference {
            None => reference = Some(matrix),
            Some(want) => assert_eq!(
                want, &matrix,
                "matrix diverged at batch_threads = {threads}"
            ),
        }
    }
}

#[test]
fn telemetry_counter_aggregates_identical_across_thread_counts() {
    let names = ["crc32", "bitcount", "sha"];
    let approaches = [
        Approach::Baseline,
        Approach::Remapping,
        Approach::Select,
        Approach::Adaptive,
    ];
    // The remap work counters are schedule-invariant at any remap thread
    // count (the portfolio pre-splits its budget), so the *entire*
    // aggregated counter map must be bit-identical at any batch width —
    // even with the parallel remap search left at its default.
    let mut setup = LowEndSetup::default();
    setup.remap_starts = 50;

    let mut reference = None;
    for threads in [1usize, 2, 8] {
        setup.batch_threads = threads;
        let (_, mut telemetry) = run_lowend_matrix_with_telemetry(&names, &approaches, &setup);
        telemetry.clear_spans();
        // The dense IRC engine's per-stage work counters ride along in the
        // whole-map comparison below; make their presence explicit so the
        // pinning can't silently pass if they stop being emitted. (Freeze
        // may legitimately be 0 on these workloads, so only its key is
        // required.)
        for key in ["irc.simplify", "irc.coalesce", "irc.freeze", "irc.spill"] {
            assert!(
                telemetry.counters().contains_key(key),
                "counter {key} missing at batch_threads = {threads}"
            );
        }
        assert!(telemetry.counter("irc.simplify") > 0, "no simplify steps recorded");
        match &reference {
            None => reference = Some(telemetry),
            Some(want) => assert_eq!(
                want, &telemetry,
                "telemetry counters diverged at batch_threads = {threads}"
            ),
        }
    }
}

/// Panic isolation extends the determinism contract to faulty matrices:
/// an injected worker panic fails exactly its own cell, and every
/// *surviving* cell is bit-identical to the clean run — at any width.
#[test]
fn injected_panic_fails_one_cell_and_preserves_the_rest() {
    let names = ["crc32", "bitcount", "sha"];
    let approaches = [
        Approach::Baseline,
        Approach::Remapping,
        Approach::Select,
        Approach::Adaptive,
    ];
    let mut setup = LowEndSetup::default();
    setup.remap_starts = 50;
    setup.remap_threads = 1;

    let (clean, _) = run_lowend_matrix_with_telemetry(&names, &approaches, &setup);

    // Cell 5 = (bitcount, Remapping) in row-major (benchmark, approach)
    // order.
    setup.faults.panic_cells.insert(5);
    for threads in [1usize, 2, 8] {
        setup.batch_threads = threads;
        let (matrix, telemetry) = run_lowend_matrix_with_telemetry(&names, &approaches, &setup);
        for (bi, row) in matrix.iter().enumerate() {
            for (ai, cell) in row.iter().enumerate() {
                if bi * approaches.len() + ai == 5 {
                    match cell {
                        Err(PipelineError::Panic { message, .. }) => assert!(
                            message.contains("injected cell fault"),
                            "threads {threads}: wrong panic payload: {message}"
                        ),
                        other => panic!(
                            "threads {threads}: faulted cell produced {other:?}"
                        ),
                    }
                } else {
                    let want = normalized(clean[bi][ai].as_ref().unwrap().clone());
                    let got = normalized(cell.as_ref().unwrap().clone());
                    assert_eq!(
                        want, got,
                        "threads {threads}: survivor ({bi},{ai}) diverged"
                    );
                }
            }
        }
        assert_eq!(telemetry.counter("cells.failed"), 1, "threads {threads}");
        // Default `cell_retries = 1`: one re-attempt before giving up.
        assert_eq!(telemetry.counter("cells.retried"), 1, "threads {threads}");
        assert_eq!(telemetry.counter("cells.err"), 1, "threads {threads}");
        assert_eq!(
            telemetry.counter("cells.ok"),
            (names.len() * approaches.len() - 1) as u64,
            "threads {threads}"
        );
    }
}

/// A stale pressure table is the caller's bug, not the differential
/// path's: it must surface as `PressureMismatch` for every approach, and
/// must not be swallowed by degradation.
#[test]
fn pressure_mismatch_is_reported_not_degraded() {
    use dra_core::lowend::compile_program_telemetry;
    use dra_core::telemetry::Telemetry;

    let setup = LowEndSetup::default();
    for approach in [Approach::Baseline, Approach::Select, Approach::Adaptive] {
        let mut p = dra_workloads::benchmark("crc32");
        let funcs = p.funcs.len();
        let stale = vec![7usize; funcs + 2];
        let mut t = Telemetry::new();
        match compile_program_telemetry(&mut p, approach, &setup, Some(&stale), &mut t) {
            Err(PipelineError::PressureMismatch { funcs: f, pressures }) => {
                assert_eq!((f, pressures), (funcs, funcs + 2), "{}", approach.label());
            }
            other => panic!("{}: expected PressureMismatch, got {other:?}", approach.label()),
        }
        assert_eq!(t.counter("degrade.programs"), 0, "{}", approach.label());
    }
}

#[test]
fn highend_sweep_identical_across_thread_counts() {
    let suite = generate_loop_suite(&LoopSuiteConfig {
        n_loops: 60,
        hungry_fraction: 0.2,
        seed: 11,
    });
    let reg_ns = [32u16, 48, 64];
    let want = run_highend_sweep(&suite, &reg_ns, 1);
    for threads in [2usize, 8] {
        let got = run_highend_sweep(&suite, &reg_ns, threads);
        assert_eq!(want, got, "sweep diverged at {threads} threads");
    }
}

#[test]
fn run_batch_output_is_in_item_order_at_any_width() {
    // Uneven per-item cost exercises the work-stealing claim order.
    let items: Vec<u64> = (0..64).collect();
    let expensive = |_, &x: &u64| {
        let mut acc = x;
        for i in 0..(x % 7) * 10_000 {
            acc = acc.wrapping_mul(31).wrapping_add(i);
        }
        (x, acc)
    };
    let want = run_batch(&items, 1, expensive);
    for threads in [2usize, 3, 8, 16] {
        assert_eq!(
            want,
            run_batch(&items, threads, expensive),
            "diverged at {threads} threads"
        );
    }
}
