//! End-to-end integration: every allocator approach, on every benchmark,
//! must produce a decodable program that computes the same answer on the
//! simulated machine — and dynamic hardware decoding of the executed trace
//! must reconstruct every register operand.

use dra_core::lowend::{compile_and_run, Approach, LowEndSetup};
use dra_encoding::{decode_trace, EncodingConfig};
use dra_workloads::benchmark_names;

/// Benchmarks small enough to run under every approach in test time.
const FAST: &[&str] = &["crc32", "adpcm", "stringsearch", "bitcount", "qsort"];

#[test]
fn all_approaches_agree_on_fast_benchmarks() {
    let setup = LowEndSetup::default();
    for name in FAST {
        let mut results = Vec::new();
        for a in Approach::ALL {
            let r = compile_and_run(name, a, &setup)
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", a.label()));
            results.push((a, r.ret_value));
        }
        let expected = results[0].1;
        for (a, got) in results {
            assert_eq!(got, expected, "{name}/{} diverged", a.label());
        }
    }
}

#[test]
fn differential_programs_decode_along_executed_traces() {
    let setup = LowEndSetup::default();
    let enc = EncodingConfig::new(setup.diff);
    for name in FAST {
        for a in [Approach::Remapping, Approach::Select, Approach::Coalesce] {
            let r = compile_and_run(name, a, &setup)
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", a.label()));
            // The simulator records the entry activation's block trace;
            // hardware decoding along that exact dynamic path must agree
            // with the static code on every operand.
            let f = &r.program.funcs[r.program.entry as usize];
            decode_trace(f, &enc, &r.entry_trace)
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", a.label()));
        }
    }
}

#[test]
fn differential_reduces_spills_without_changing_results() {
    let setup = LowEndSetup::default();
    let mut total_base = 0usize;
    let mut total_diff = 0usize;
    for name in benchmark_names() {
        if !FAST.contains(&name) {
            continue;
        }
        let base = compile_and_run(name, Approach::Baseline, &setup).unwrap();
        let sel = compile_and_run(name, Approach::Select, &setup).unwrap();
        assert_eq!(base.ret_value, sel.ret_value, "{name}");
        total_base += base.spill_insts;
        total_diff += sel.spill_insts;
    }
    assert!(
        total_diff < total_base,
        "12 differential registers must reduce spills overall: {total_diff} vs {total_base}"
    );
}

#[test]
fn baseline_has_no_set_last_regs_and_uses_only_eight_registers() {
    let setup = LowEndSetup::default();
    for name in FAST {
        let r = compile_and_run(name, Approach::Baseline, &setup).unwrap();
        assert_eq!(r.set_last_regs, 0, "{name}");
        for f in &r.program.funcs {
            for i in f.iter_insts() {
                for reg in i.accesses() {
                    assert!(
                        reg.expect_phys().number() < 8,
                        "{name}: baseline uses {reg:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn differential_uses_extended_registers() {
    // The whole point: registers 8..12 must actually get used.
    let setup = LowEndSetup::default();
    let r = compile_and_run("sha", Approach::Select, &setup).unwrap();
    let mut high = 0;
    for f in &r.program.funcs {
        for i in f.iter_insts() {
            for reg in i.accesses() {
                if reg.expect_phys().number() >= 8 {
                    high += 1;
                }
            }
        }
    }
    assert!(high > 0, "no extended-register accesses found");
}

#[test]
fn compiled_benchmark_assembles_and_bit_decodes() {
    // The deepest loop closure: compile with differential coalesce,
    // assemble the entry function to actual LEAF16 words, execute on the
    // cycle simulator, then reconstruct every register operand of the
    // executed trace FROM THE BITS and check it against the IR.
    let setup = LowEndSetup::default();
    let geom = dra_isa::IsaGeometry::leaf16(3);
    let enc = EncodingConfig::new(setup.diff);
    for name in ["crc32", "bitcount"] {
        let r = compile_and_run(name, Approach::Coalesce, &setup).unwrap();
        let f = &r.program.funcs[r.program.entry as usize];
        let image = dra_encoding::assemble_function(f, &enc, &geom)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            image.size_bits(),
            dra_isa::function_size_bits(f, &geom),
            "{name}: size model vs assembler"
        );
        let decoded = dra_encoding::disassemble_trace(&image, f, &enc, &geom, &r.entry_trace)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(!decoded.is_empty());
    }
}

#[test]
fn baseline_assembles_directly_in_three_bits() {
    // Direct encoding with 8 registers fits 3-bit fields with no repairs.
    let setup = LowEndSetup::default();
    let geom = dra_isa::IsaGeometry::leaf16(3);
    let enc = EncodingConfig::new(dra_adjgraph::DiffParams::direct(8));
    let r = compile_and_run("crc32", Approach::Baseline, &setup).unwrap();
    let f = &r.program.funcs[r.program.entry as usize];
    // Direct encoding still needs the entry repair under our decoder
    // model; insert and assemble.
    let mut f2 = f.clone();
    dra_encoding::insert_set_last_reg(&mut f2, &enc);
    dra_encoding::assemble_function(&f2, &enc, &geom).unwrap();
}

#[test]
fn adaptive_mode_agrees_and_pays_less() {
    let setup = LowEndSetup::default();
    for name in FAST {
        let base = compile_and_run(name, Approach::Baseline, &setup).unwrap();
        let select = compile_and_run(name, Approach::Select, &setup).unwrap();
        let adaptive = compile_and_run(name, Approach::Adaptive, &setup).unwrap();
        assert_eq!(base.ret_value, adaptive.ret_value, "{name}");
        assert!(
            adaptive.set_last_regs <= select.set_last_regs,
            "{name}: adaptive repairs {} > select {}",
            adaptive.set_last_regs,
            select.set_last_regs
        );
    }
}
