//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `black_box`, `criterion_group!`, `criterion_main!` —
//! backed by a simple wall-clock measurement loop instead of criterion's
//! statistical machinery.
//!
//! Command-line behavior (mirrors criterion where it matters):
//!
//! * `--test` — run every benchmark body exactly once and report `ok`;
//!   this is the CI smoke mode (`cargo bench --bench X -- --test`).
//! * `--bench` (passed by cargo for `harness = false` targets) — ignored.
//! * any bare argument — substring filter on benchmark names.
//!
//! Timings are reported as mean ± half-spread over `sample_size`
//! samples, each sample auto-scaled to at least ~1 ms of work.

use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting benched work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Throughput annotation (accepted, reported only as a label).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    /// Measured samples (seconds per iteration), filled by `iter`.
    samples: Vec<f64>,
    sample_size: usize,
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum Mode {
    Measure,
    TestOnce,
}

impl Bencher {
    /// Time `routine`, auto-scaling iteration counts per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.mode == Mode::TestOnce {
            black_box(routine());
            return;
        }
        // Calibrate: how many iterations reach ~1 ms per sample?
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        let iters = ((1e-3 / once).ceil() as u64).clamp(1, 1_000_000);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t.elapsed().as_secs_f64() / iters as f64);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group_name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set samples per benchmark (criterion's minimum is 10; any
    /// positive value is accepted here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; this harness keeps samples
    /// auto-scaled rather than time-budgeted.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Record a throughput annotation (printed with the group).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        eprintln!("  (throughput: {t:?})");
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkName,
        f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.group_name, id.into_name());
        let sample_size = self.sample_size;
        self.criterion.run_one(&name, sample_size, f);
        self
    }

    /// Benchmark a closure with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkName,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (a no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Names acceptable where criterion takes `&str` or `BenchmarkId`.
pub trait IntoBenchmarkName {
    /// The display name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkName for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkName for String {
    fn into_name(self) -> String {
        self
    }
}

impl IntoBenchmarkName for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

/// The benchmark harness driver.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            filter: None,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Apply `--test` / filter arguments (called by `criterion_main!`).
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                // Flags cargo or users pass that this harness ignores.
                "--bench" | "--verbose" | "--quiet" | "--noplot" => {}
                a if a.starts_with("--") => {}
                a => self.filter = Some(a.to_string()),
            }
        }
        self
    }

    /// Benchmark a standalone closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl IntoBenchmarkName,
        f: F,
    ) -> &mut Self {
        let name = name.into_name();
        let n = self.default_sample_size;
        self.run_one(&name, n, f);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            group_name: name.into(),
            sample_size,
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, sample_size: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            mode: if self.test_mode {
                Mode::TestOnce
            } else {
                Mode::Measure
            },
            samples: Vec::new(),
            sample_size,
        };
        if self.test_mode {
            f(&mut b);
            println!("test {name} ... ok");
            return;
        }
        f(&mut b);
        if b.samples.is_empty() {
            println!("{name:<50} (no measurement)");
            return;
        }
        let mean = b.samples.iter().sum::<f64>() / b.samples.len() as f64;
        let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = b.samples.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{name:<50} time: [{} {} {}]",
            format_time(min),
            format_time(mean),
            format_time(max),
        );
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Define a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).into_name(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x-8").into_name(), "x-8");
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
            default_sample_size: 20,
        };
        let mut runs = 0;
        c.bench_function("once", |b| {
            b.iter(|| runs += 1);
        });
        assert_eq!(runs, 1);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            test_mode: true,
            filter: Some("keep".into()),
            default_sample_size: 20,
        };
        let mut ran = Vec::new();
        c.bench_function("keep-me", |b| b.iter(|| ran.push("keep")));
        c.bench_function("drop-me", |b| b.iter(|| ran.push("drop")));
        assert_eq!(ran, vec!["keep"]);
    }

    #[test]
    fn measure_mode_collects_samples() {
        let mut c = Criterion {
            test_mode: false,
            filter: None,
            default_sample_size: 3,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("add", 1), &21u64, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        group.finish();
    }
}
