//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the *subset* of the rand 0.8 API it actually uses:
//!
//! * [`rngs::SmallRng`] seeded through [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen_range`] over integer and float ranges (half-open and
//!   inclusive),
//! * [`Rng::gen_bool`] and [`Rng::gen`] (for `f64`/`bool`/integers),
//! * [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ with a SplitMix64 seed expansion —
//! deterministic across platforms and runs, which is all the workspace
//! needs (benchmark generators, remapping restarts, property tests).
//! Streams do **not** match the real rand crate bit-for-bit; every
//! consumer in this workspace treats the stream as an opaque seeded
//! source, so only determinism matters.

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step: expands seeds and decorrelates nearby values.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; the SplitMix64
            // expansion cannot produce one, but keep the guard explicit.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution subset).
pub trait Standard: Sized {
    /// Sample one value uniformly over the type's natural range
    /// (`[0, 1)` for floats).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types [`Rng::gen_range`] can sample uniformly.
///
/// The single blanket [`SampleRange`] impl over this trait mirrors the
/// real rand crate's structure; it is what lets integer-literal ranges
/// (`0..=2`) unify with the surrounding expression's type.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform value in `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "cannot sample empty range");
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one uniformly distributed value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_in(rng, lo, hi, true)
    }
}

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// A uniform value from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0, 1]");
        f64::sample(self) < p
    }

    /// A value of `T` from its natural uniform distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (the only `seq` API the workspace uses).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10u8);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(0..=4usize);
            assert!(w <= 4);
            let x = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&x));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
