//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the subset of the proptest 1.x API its tests use:
//!
//! * [`Strategy`] with `prop_map` / `prop_filter` / `prop_flat_map`,
//! * range strategies (`0..8u8`, `1usize..=3`, `0.0f64..0.35`),
//! * [`any`] for primitives, [`Just`], [`prop_oneof!`],
//!   [`collection::vec`], tuple strategies up to arity 12,
//! * the [`proptest!`] macro with `#![proptest_config(..)]`,
//!   [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`], and
//!   [`prop_assume!`].
//!
//! Cases are generated from a deterministic per-test RNG (seeded by the
//! test's name), so failures reproduce exactly. **No shrinking** is
//! performed: a failing case panics with the generated inputs' `Debug`
//! rendering. That keeps the stand-in a few hundred lines while
//! preserving the property-test discipline the suites rely on.

use std::fmt;
use std::rc::Rc;

/// Deterministic generator backing all strategies (SplitMix64-fed
/// xorshift; quality is ample for test-case generation).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor; the `proptest!` runner derives the seed from
    /// the test name so different tests explore different streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// How a single generated case ended.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case did not satisfy a `prop_assume!`; generate another.
    Reject(String),
    /// An assertion failed; the property does not hold.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Construct a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Result type the bodies of `proptest!` tests produce.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`#![proptest_config(..)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Give up after this many consecutive `prop_assume!` rejections.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// A generator of values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the RNG stream.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O + 'static>(
        self,
        f: F,
    ) -> Map<Self, O>
    where
        Self: Sized + 'static,
    {
        Map {
            inner: self,
            f: Rc::new(f),
        }
    }

    /// Keep only values satisfying `pred` (resamples up to a bound).
    fn prop_filter<F: Fn(&Self::Value) -> bool + 'static>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self>
    where
        Self: Sized + 'static,
    {
        Filter {
            inner: self,
            whence,
            pred: Rc::new(pred),
        }
    }

    /// Generate with a strategy derived from each value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2 + 'static>(
        self,
        f: F,
    ) -> FlatMap<Self, S2>
    where
        Self: Sized + 'static,
    {
        FlatMap {
            inner: self,
            f: Rc::new(f),
        }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S: Strategy, O> {
    inner: S,
    f: Rc<dyn Fn(S::Value) -> O>,
}

impl<S: Strategy, O> Clone for Map<S, O> {
    fn clone(&self) -> Self {
        Map {
            inner: self.inner.clone(),
            f: Rc::clone(&self.f),
        }
    }
}

impl<S: Strategy, O: fmt::Debug> Strategy for Map<S, O> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_filter`] adapter.
pub struct Filter<S: Strategy> {
    inner: S,
    whence: &'static str,
    pred: Rc<dyn Fn(&S::Value) -> bool>,
}

impl<S: Strategy> Clone for Filter<S> {
    fn clone(&self) -> Self {
        Filter {
            inner: self.inner.clone(),
            whence: self.whence,
            pred: Rc::clone(&self.pred),
        }
    }
}

impl<S: Strategy> Strategy for Filter<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 10000 samples in a row", self.whence);
    }
}

/// [`Strategy::prop_flat_map`] adapter.
pub struct FlatMap<S: Strategy, S2> {
    inner: S,
    f: Rc<dyn Fn(S::Value) -> S2>,
}

impl<S: Strategy, S2> Clone for FlatMap<S, S2> {
    fn clone(&self) -> Self {
        FlatMap {
            inner: self.inner.clone(),
            f: Rc::clone(&self.f),
        }
    }
}

impl<S: Strategy, S2: Strategy> Strategy for FlatMap<S, S2> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Type-erased strategy (`Strategy::boxed`).
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Strategy producing one constant value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T: fmt::Debug> Union<T> {
    /// A union over the given arms (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for [`Arbitrary`] types ([`any`]).
#[derive(Debug)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::{Strategy, TestRng};

    /// Sizes acceptable to [`vec`]: an exact length or a length range.
    pub trait IntoSizeRange: Clone {
        /// Draw a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty size range");
            lo + rng.below((hi - lo) as u64 + 1) as usize
        }
    }

    /// Strategy for vectors of `element` values with a length in `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: IntoSizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector strategy (`proptest::collection::vec(elem, 1..8)`).
    pub fn vec<S: Strategy, Z: IntoSizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }
}

/// One arm of `prop_oneof!`: boxes a strategy for the union.
#[doc(hidden)]
pub fn __oneof_arm<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    s.boxed()
}

/// Uniform choice among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::__oneof_arm($arm)),+])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        prop_assert!(
            *l == *r,
            "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), format!($($fmt)*), l, r
        );
    }};
}

/// Fail the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($lhs), stringify!($rhs), l
        );
    }};
}

/// Reject the current case (resample) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Deterministic per-test seed derived from the test's name (FNV-1a).
#[doc(hidden)]
pub fn __seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Run one property: generate cases until `config.cases` succeed, panic
/// on the first failure with the inputs' `Debug` rendering.
#[doc(hidden)]
pub fn __run_property<I: fmt::Debug>(
    name: &str,
    config: &ProptestConfig,
    mut generate: impl FnMut(&mut TestRng) -> I,
    mut run: impl FnMut(&I) -> TestCaseResult,
) {
    let mut rng = TestRng::seed_from_u64(__seed_for(name));
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        let input = generate(&mut rng);
        match run(&input) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "{name}: gave up after {rejected} prop_assume! rejections \
                         ({passed}/{} cases passed)",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{name}: property failed after {passed} passing case(s)\n\
                     {msg}\ninput: {input:#?}"
                );
            }
        }
    }
}

/// Define property tests: each `fn` runs its body over generated inputs.
#[macro_export]
macro_rules! proptest {
    // With a leading config attribute.
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns!{ config = $config; $($rest)* }
    };
    // Without one.
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns!{ config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( config = $config:expr; ) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        // The user writes `#[test]` inside the macro invocation (that is
        // proptest's convention), so it arrives via `$meta` — don't add
        // a second one.
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let __strategies = ( $($strat,)+ );
            $crate::__run_property(
                stringify!($name),
                &__config,
                |__rng| $crate::Strategy::generate(&__strategies, __rng),
                |__input| {
                    let ( $($pat,)+ ) = ::core::clone::Clone::clone(__input);
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_fns!{ config = $config; $($rest)* }
    };
}

pub mod strategy {
    //! Re-exports mirroring proptest's module layout.
    pub use crate::{BoxedStrategy, Just, Strategy, Union};
}

pub mod test_runner {
    //! Re-exports mirroring proptest's module layout.
    pub use crate::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
}

/// The `prop` facade module (`prop::collection::vec` etc.).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    //! Everything a test file needs (`use proptest::prelude::*`).
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume,
        prop_oneof, proptest, Arbitrary, BoxedStrategy, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..500 {
            let v = (3..9u8).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (1usize..=4).generate(&mut rng);
            assert!((1..=4).contains(&w));
            let f = (0.25f64..0.5).generate(&mut rng);
            assert!((0.25..0.5).contains(&f));
            let n = (-10i32..-2).generate(&mut rng);
            assert!((-10..-2).contains(&n));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut rng = TestRng::seed_from_u64(2);
        let s = (0..5u8, 0..5u8).prop_map(|(a, b)| (a as u16) + (b as u16));
        for _ in 0..100 {
            assert!(s.generate(&mut rng) <= 8);
        }
    }

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::seed_from_u64(3);
        let s = crate::collection::vec(0..10u8, 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let exact = crate::collection::vec(any::<bool>(), 7usize);
        assert_eq!(exact.generate(&mut rng).len(), 7);
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::seed_from_u64(4);
        let s = prop_oneof![Just(1u8), Just(2), Just(3)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn filter_discards_unwanted() {
        let mut rng = TestRng::seed_from_u64(5);
        let s = (0..100u8).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let gen_all = |seed| {
            let mut rng = TestRng::seed_from_u64(seed);
            let s = crate::collection::vec(0..1000u32, 5..20);
            (0..10).map(|_| s.generate(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(gen_all(7), gen_all(7));
        assert_ne!(gen_all(7), gen_all(8));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself works end to end.
        #[test]
        fn macro_binds_and_asserts(a in 0..50u8, b in 0..50u8) {
            let s = a as u16 + b as u16;
            prop_assert!(s < 100, "sum {s} out of range");
            prop_assert_eq!(s, b as u16 + a as u16);
        }

        /// Tuple patterns destructure generated values.
        #[test]
        fn macro_tuple_pattern((x, y) in (0..10u8, 10..20u8)) {
            prop_assert!(x < y);
        }

        /// Assume rejects without failing.
        #[test]
        fn macro_assume_filters(v in 0..100u32) {
            prop_assume!(v % 3 == 0);
            prop_assert_eq!(v % 3, 0);
        }
    }
}
