#!/usr/bin/env bash
# Chaos smoke: run the full benchmark × approach matrix with a nonzero
# fault seed — injected worker panics, per-function alloc/verify
# failures, and a stream-corruption campaign per benchmark — and insist
# that every fault is contained (isolated cell failure, degradation to
# direct encoding, or a detected/benign decode). The emitted
# results/telemetry/chaos.json must validate under `drac report`.
#
# usage: scripts/chaos.sh [seed] [faults-per-benchmark]
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${1:-3}"
FAULTS="${2:-96}"

cargo run -q -p dra-core --release --bin drac -- chaos --seed "$SEED" --faults "$FAULTS"
cargo run -q -p dra-core --release --bin drac -- report results/telemetry/chaos.json > /dev/null
echo "chaos OK (seed $SEED)"

# Serve-level chaos: the seeded overload/failure campaign against live
# daemons — deadline storms, queue floods, worker kills, client
# disconnects — run twice under the same seed. The command exits
# nonzero unless every admitted request got exactly one response, every
# killed worker's restart was counted, and counter totals matched
# across the two runs. The emitted report must validate under
# `drac report`.
cargo run -q -p dra-core --release --bin drac -- chaos --serve --seed 3
cargo run -q -p dra-core --release --bin drac -- report results/telemetry/chaos_serve.json > /dev/null
echo "serve chaos OK (seed 3)"
