#!/usr/bin/env bash
# Tier-1 verification: release build, full test suite, and a one-shot
# smoke of the remap_scaling bench (criterion's `--test` mode runs each
# bench body exactly once, so regressions in the bench harness or the
# incremental-search plumbing fail CI without paying for a full sweep).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo bench --bench remap_scaling -- --test
