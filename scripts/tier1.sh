#!/usr/bin/env bash
# Tier-1 verification: release build, full test suite, one-shot smokes of
# the remap_scaling and irc_build benches (criterion's `--test` mode runs
# each bench body exactly once, so regressions in the bench harnesses,
# the incremental-search plumbing, or the interference-graph
# representations fail CI without paying for a full sweep), and a
# telemetry smoke: one figure binary must emit a schema-valid
# results/telemetry/*.json that `drac report` accepts.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo bench --bench remap_scaling -- --test
cargo bench --bench irc_build -- --test
cargo bench --bench irc_color -- --test

rm -f results/telemetry/fig11.json
cargo run -q -p dra-bench --release --bin fig11 > /dev/null
cargo run -q -p dra-core --release --bin drac -- report results/telemetry/fig11.json > /dev/null
echo "telemetry smoke OK"

# Fault containment: the injection suite end to end, then the decoder
# totality properties by name (the load-bearing "hostile streams never
# panic" guarantee gets its own loud line in CI output).
cargo test -q --test fault_injection
cargo test -q --test fault_injection decoder_is_total
echo "fault containment OK"
