#!/usr/bin/env bash
# Tier-1 verification: release build, full test suite, one-shot smokes of
# the remap_scaling, remap_ablation, and irc benches (criterion's `--test` mode runs
# each bench body exactly once, so regressions in the bench harnesses,
# the incremental-search plumbing, or the interference-graph
# representations fail CI without paying for a full sweep), and a
# telemetry smoke: one figure binary must emit a schema-valid
# results/telemetry/*.json that `drac report` accepts.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo bench --bench remap_scaling -- --test
cargo bench --bench remap_ablation -- --test
cargo bench --bench irc_build -- --test
cargo bench --bench irc_color -- --test

rm -f results/telemetry/fig11.json
cargo run -q -p dra-bench --release --bin fig11 > /dev/null
cargo run -q -p dra-core --release --bin drac -- report results/telemetry/fig11.json > /dev/null
echo "telemetry smoke OK"

# Checker smoke: the symbolic allocation checker over the full benchmark ×
# approach matrix (`--check` wired through the same pipeline), which must
# come back with zero violations and a schema-valid telemetry frame.
cargo run -q -p dra-core --release --bin drac -- check > /dev/null
cargo run -q -p dra-core --release --bin drac -- report results/telemetry/checker.json > /dev/null
echo "checker smoke OK"

# Fault containment: the injection suite end to end, then the decoder
# totality properties by name (the load-bearing "hostile streams never
# panic" guarantee gets its own loud line in CI output).
cargo test -q --test fault_injection
cargo test -q --test fault_injection decoder_is_total
echo "fault containment OK"

# Corpus smoke: the profile → generator → batch-compile → checker loop
# at CI scale. 100 generated functions must compile with zero errors and
# zero checker violations (the command exits nonzero otherwise), the
# emitted profile artifact must be a valid dra-profile-v1 document (the
# generator accepts only validated profiles, so feeding the artifact
# back through `corpus` is the validation gate), and the corpus
# telemetry frame must be schema-valid.
cargo run -q -p dra-core --release --bin drac -- profile --builtin embedded-dsp > /dev/null
cargo run -q -p dra-core --release --bin drac -- corpus \
  --profile results/profiles/embedded-dsp.json --count 100 > /dev/null
cargo run -q -p dra-core --release --bin drac -- report results/telemetry/corpus.json > /dev/null
echo "corpus smoke OK"

# Serve smoke: a resident daemon on a temp Unix socket, driven through
# the dra-serve-v1 line protocol — ping, two identical compiles (the
# second must come from the cross-request result cache), a stats probe,
# graceful shutdown (asserted by `wait` under `set -e`, and by the
# socket file being cleaned up) — then the self-hosted load harness in
# smoke mode, which itself asserts nonzero cache hits.
SOCK="$(mktemp -u /tmp/drac-serve-XXXXXX.sock)"
SMOKE_DIR="$(mktemp -d /tmp/drac-serve-smoke-XXXXXX)"
trap 'rm -rf "$SMOKE_DIR"; rm -f "$SOCK"' EXIT
cargo run -q -p dra-core --release --bin drac -- serve --addr "unix:$SOCK" --workers 2 > /dev/null &
SERVE_PID=$!
for _ in $(seq 100); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "serve socket never appeared"; exit 1; }
python3 - "$SOCK" <<'EOF'
import json, socket, sys
s = socket.socket(socket.AF_UNIX)
s.connect(sys.argv[1])
f = s.makefile("rw")
def rpc(**req):
    f.write(json.dumps(req) + "\n")
    f.flush()
    return json.loads(f.readline())
assert rpc(schema="dra-serve-v1", id="p", kind="ping")["kind"] == "pong"
first = rpc(schema="dra-serve-v1", id="c1", kind="compile", approach="select", bench="crc32")
assert first["ok"] and not first["cached"], first
again = rpc(schema="dra-serve-v1", id="c2", kind="compile", approach="select", bench="crc32")
assert again["ok"] and again["cached"], again
assert again["result"] == first["result"], (first, again)
stats = rpc(schema="dra-serve-v1", id="s", kind="stats")
assert stats["stats"]["counters"]["result_cache.hits"] >= 1, stats
assert rpc(schema="dra-serve-v1", id="q", kind="shutdown")["kind"] == "bye"
EOF
wait "$SERVE_PID"
[ ! -S "$SOCK" ] || { echo "stale serve socket left behind"; exit 1; }
cargo run -q -p dra-core --release --bin drac -- bench-serve --smoke \
  --out "$SMOKE_DIR/serve_bench.json" --telemetry-root "$SMOKE_DIR" > /dev/null
cargo run -q -p dra-core --release --bin drac -- report "$SMOKE_DIR/results/telemetry" > /dev/null
# The committed telemetry directory must validate wholesale — `report`
# discovers every frame, serve/bench_serve included.
cargo run -q -p dra-core --release --bin drac -- report results/telemetry > /dev/null
echo "serve smoke OK"

# Overload smoke: a one-worker daemon with a queue capacity of 1, hit
# with a pipelined flood of 24 batch-priority dra-serve-v2 compiles all
# written before a single response is read. Admission control must
# answer every id exactly once — ok, or a retryable "overloaded" shed —
# shed at least one of them, and still shut down cleanly with the
# socket removed.
OSOCK="$(mktemp -u /tmp/drac-overload-XXXXXX.sock)"
trap 'rm -rf "$SMOKE_DIR"; rm -f "$SOCK" "$OSOCK"' EXIT
cargo run -q -p dra-core --release --bin drac -- serve --addr "unix:$OSOCK" \
  --workers 1 --queue-cap 1 > /dev/null &
OVER_PID=$!
for _ in $(seq 100); do [ -S "$OSOCK" ] && break; sleep 0.1; done
[ -S "$OSOCK" ] || { echo "overload serve socket never appeared"; exit 1; }
python3 - "$OSOCK" <<'EOF'
import json, socket, sys
s = socket.socket(socket.AF_UNIX)
s.connect(sys.argv[1])
f = s.makefile("rw")
n = 24
for i in range(n):
    f.write(json.dumps({
        "schema": "dra-serve-v2", "id": "flood-%d" % i, "kind": "compile",
        "approach": "select", "bench": "crc32", "priority": "batch",
    }) + "\n")
f.flush()
seen, shed, ok = set(), 0, 0
for _ in range(n):
    resp = json.loads(f.readline())
    rid = resp["id"]
    assert rid.startswith("flood-") and rid not in seen, resp
    seen.add(rid)
    if resp["ok"]:
        ok += 1
        continue
    err = resp["error"]
    assert err["kind"] == "overloaded" and err["retryable"], resp
    shed += 1
assert len(seen) == n, sorted(seen)
assert ok >= 1, "cap-1 queue admitted nothing"
assert shed >= 1, "pipelined flood against a cap-1 queue never shed"
f.write(json.dumps({"schema": "dra-serve-v1", "id": "q", "kind": "shutdown"}) + "\n")
f.flush()
assert json.loads(f.readline())["kind"] == "bye"
EOF
wait "$OVER_PID"
[ ! -S "$OSOCK" ] || { echo "stale overload socket left behind"; exit 1; }
echo "overload smoke OK"
