#!/usr/bin/env bash
# Tier-1 verification: release build, full test suite, and one-shot
# smokes of the remap_scaling and irc_build benches (criterion's `--test`
# mode runs each bench body exactly once, so regressions in the bench
# harnesses, the incremental-search plumbing, or the interference-graph
# representations fail CI without paying for a full sweep).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo bench --bench remap_scaling -- --test
cargo bench --bench irc_build -- --test
