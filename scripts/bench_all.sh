#!/usr/bin/env bash
# Run every results-producing bench harness in full (criterion groups plus
# the headline sections that write results/*.json), then consolidate the
# headline numbers of all results/*.json artifacts into one
# results/bench_summary.json for dashboards and regression diffing.
#
# This is the long-form companion to scripts/tier1.sh (which only smokes
# the bench bodies with `--test`); expect a few minutes of wall time.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release

# Criterion harnesses with headline sections that write results/*.json.
cargo bench --bench remap_ablation
cargo bench --bench irc_build
cargo bench --bench irc_color

# Figure binaries with results artifacts (fig13 carries the remap-search
# portfolio comparison and the optimality-gap table).
cargo run -q -p dra-bench --release --bin fig13 > /dev/null

# Symbolic checker sweep: refreshes results/telemetry/checker.json, whose
# counters feed the `checker` headline below.
cargo run -q -p dra-core --release --bin drac -- check > /dev/null

# Corpus throughput: 10k profile-generated functions through the
# session-backed batch driver at 1/2/8 workers, scratch arenas off vs
# on. Refreshes results/corpus_bench.json (jobs/sec, arena speedups,
# cache evictions, peak RSS).
cargo run -q -p dra-core --release --bin drac -- bench-corpus > /dev/null

python3 - <<'EOF'
import json, os

summary = {"schema": "dra-bench-summary-v1", "sources": {}}

def load(name):
    path = os.path.join("results", name)
    if not os.path.exists(path):
        return None
    with open(path) as f:
        return json.load(f)

fig13 = load("fig13.json")
if fig13:
    remap_ratios = [
        a["code_ratio"]
        for b in fig13["benchmarks"]
        for a in b["approaches"]
        if a["approach"] == "remapping"
    ]
    pv = fig13.get("portfolio_vs_greedy", [])
    gaps = fig13.get("optimality_gap", [])
    summary["sources"]["fig13"] = {
        "avg_remapping_code_ratio": sum(remap_ratios) / max(len(remap_ratios), 1),
        "portfolio_benchmarks": len(pv),
        "portfolio_strict_wins": sum(
            1 for e in pv if e["portfolio_dynamic_slr"] < e["greedy_dynamic_slr"]
        ),
        "portfolio_losses": sum(
            1 for e in pv if e["portfolio_dynamic_slr"] > e["greedy_dynamic_slr"]
        ),
        "greedy_dynamic_slr_total": sum(e["greedy_dynamic_slr"] for e in pv),
        "portfolio_dynamic_slr_total": sum(e["portfolio_dynamic_slr"] for e in pv),
        "max_portfolio_gap": max((e["portfolio_gap"] for e in gaps), default=0.0),
        "max_greedy_gap": max((e["greedy_gap"] for e in gaps), default=0.0),
    }

ablation = load("remap_ablation.json")
if ablation:
    summary["sources"]["remap_ablation"] = {
        "eval_budget": ablation["eval_budget"],
        "greedy_cost": ablation["greedy_cost"],
        "portfolio_cost": ablation["portfolio_cost"],
    }

irc_build = load("irc_build.json")
if irc_build:
    summary["sources"]["irc_build"] = {
        "largest_speedup": irc_build["largest_speedup"],
    }

irc_color = load("irc_color.json")
if irc_color:
    summary["sources"]["irc_color"] = {
        "largest_color_speedup": irc_color["largest_color_speedup"],
        "differential_color_speedup": irc_color["differential_color_speedup"],
    }

checker = load("telemetry/checker.json")
if checker:
    c = checker["counters"]
    ns = checker["spans_ns"].get("checker", 0)
    insts = c.get("checker.insts", 0)
    summary["sources"]["checker"] = {
        "functions": c.get("checker.functions", 0),
        "insts": insts,
        "fields_replayed": c.get("checker.fields_replayed", 0),
        "violations": c.get("checker.violations", 0),
        "ns_per_inst": ns / insts if insts else 0.0,
    }

corpus = load("corpus_bench.json")
if corpus:
    rates = [p["jobs_per_sec"] for p in corpus.get("phases", [])]
    fn_rates = [p["functions_per_sec"] for p in corpus.get("phases", [])]
    summary["sources"]["corpus_bench"] = {
        "profile": corpus["profile"],
        "functions": corpus["functions"],
        "max_jobs_per_sec": max(rates, default=0.0),
        "max_functions_per_sec": max(fn_rates, default=0.0),
        "arena_speedup": corpus.get("arena_speedup", {}),
        "errors": sum(p["errors"] for p in corpus.get("phases", [])),
        "peak_rss_bytes": corpus.get("peak_rss_bytes"),
    }

serve = load("serve_bench.json")
if serve:
    rates = [
        p["jobs_per_sec"] for sweep in serve.get("sweeps", []) for p in sweep["phases"]
    ]
    summary["sources"]["serve_bench"] = {
        "max_jobs_per_sec": max(rates, default=0.0),
        "workers_swept": [s["workers"] for s in serve.get("sweeps", [])],
    }

with open("results/bench_summary.json", "w") as f:
    json.dump(summary, f, indent=2)
    f.write("\n")
print("wrote results/bench_summary.json:")
print(json.dumps(summary, indent=2))
EOF
