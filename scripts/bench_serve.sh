#!/usr/bin/env bash
# Serving-throughput benchmark: boots one resident daemon per worker
# count (1→8 by default), replays seeded cold / warm / duplicate-heavy
# workloads from closed-loop clients, and writes p50/p95/p99 latency,
# jobs/sec, and cache hit rates to results/serve_bench.json plus the
# bench_serve telemetry frame. The request set is a pure function of
# the seed; only the wall-clock numbers vary run to run.
#
# usage: scripts/bench_serve.sh [drac bench-serve flags…]
#        scripts/bench_serve.sh --smoke        # CI-scale single sweep
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run -q -p dra-core --release --bin drac -- bench-serve "$@"
cargo run -q -p dra-core --release --bin drac -- report results/telemetry/bench_serve.json > /dev/null
echo "serve bench OK -> results/serve_bench.json"
